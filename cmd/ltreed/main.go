// Command ltreed serves an L-Tree store over HTTP — one process per
// node: a leader that owns the write-ahead log, a follower replicating
// from a remote leader over the shipped-op wire protocol, or a forest
// router partitioning whole documents across independent shard stores.
//
// Leader (owns the WAL, accepts writes, ships its op log):
//
//	ltreed -wal /var/lib/ltree -seed catalog.xml -ship :7878 -http :8080
//
// Follower (read replica; attaches to the leader's -ship port):
//
//	ltreed -leader leader-host:7878 -http :8081
//
// Forest (document-sharded; every shard has its own WAL under the dir):
//
//	ltreed -forest /var/lib/ltree-forest -shards 4 -http :8080
//
// A forest node adds whole-document routing (PUT/DELETE /v1/doc) on top
// of the shared read surface; queries fan out across the shards in
// parallel and merge. -shards only matters on first boot — an existing
// forest directory keeps the shard count it was created with, and a
// mismatch refuses to start rather than mis-route documents. Forest
// shards do not ship their logs (no -ship); replicate per shard with a
// store-per-shard topology if needed.
//
// The leader recovers from the WAL when it already holds a checkpoint;
// -seed is only read to boot an empty log. Followers bootstrap from the
// leader's newest checkpoint and then tail the op stream, reconnecting
// with backoff if the link drops. Every node serves the same snapshot-
// isolated read surface; see the HTTP endpoints in http.go. A follower
// read can demand read-your-writes freshness with ?wait_seq=<seq> using
// the sequence number a leader write returned.
//
// Blob tier (optional, leader and follower; see DESIGN.md §9):
//
//	ltreed -wal /var/lib/ltree -blob /mnt/objects -blob-release ...
//	ltreed -leader leader-host:7878 -blob /mnt/objects ...
//
// On a leader, -blob mirrors sealed WAL segments and checkpoints into
// the object-store directory asynchronously (commits never wait on it);
// -blob-release then frees local segment files the tier holds durably,
// bounding local disk while history stays replayable through the tier.
// A leader started with -blob on an EMPTY -wal directory restores from
// the blob tier (disaster recovery). On a follower, -blob seeds the
// replica from the object store — checkpoint plus segment tail — before
// attaching to the leader for the live stream, so bootstrap cost does
// not land on the leader. -blob-prefix namespaces one store shared by
// several nodes; leader and seeded followers must agree on it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

func main() {
	var (
		walDir    = flag.String("wal", "", "leader: WAL directory (created if missing)")
		seed      = flag.String("seed", "", "leader: XML file seeding an empty WAL")
		shipAddr  = flag.String("ship", ":7878", "leader: replication listen address")
		httpAddr  = flag.String("http", ":8080", "HTTP listen address")
		leader    = flag.String("leader", "", "follower: leader replication address (host:port)")
		forestDir = flag.String("forest", "", "forest: sharded forest directory (created if missing)")
		shards    = flag.Int("shards", 0, "forest: shard count on first boot (existing forests keep theirs)")
		wait      = flag.Duration("wait", 2*time.Second, "max wait_seq freshness wait")

		blobDir     = flag.String("blob", "", "blob tier: object-store directory (leader: async upload target; follower: bootstrap source)")
		blobPrefix  = flag.String("blob-prefix", "", "blob tier: object key prefix inside the store")
		blobRelease = flag.Bool("blob-release", false, "leader: free local segment files once the blob tier holds them durably")
	)
	flag.Parse()

	roles := 0
	for _, set := range []bool{*walDir != "", *leader != "", *forestDir != ""} {
		if set {
			roles++
		}
	}
	var err error
	switch {
	case roles > 1:
		err = errors.New("pick one role: -wal (leader), -leader (follower), or -forest (forest)")
	case *leader != "":
		err = runFollower(*leader, *httpAddr, *blobDir, *blobPrefix, *wait)
	case *walDir != "":
		err = runLeader(*walDir, *seed, *shipAddr, *httpAddr, *blobDir, *blobPrefix, *blobRelease, *wait)
	case *forestDir != "":
		err = runForest(*forestDir, *shards, *httpAddr, *wait)
	default:
		fmt.Fprintln(os.Stderr, "ltreed: need -wal <dir> (leader), -leader <addr> (follower), or -forest <dir> (forest)")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("ltreed: %v", err)
	}
}

// runLeader recovers (or seeds) the store, starts the replication
// listener, and serves HTTP until the process dies.
func runLeader(walDir, seed, shipAddr, httpAddr, blobDir, blobPrefix string, blobRelease bool, wait time.Duration) error {
	w, err := ltree.NewWALBackend(walDir, ltree.WALOptions{SegmentBytes: 4 << 20})
	if err != nil {
		return err
	}
	if blobDir != "" {
		// Attach the tier before recovery: an empty local WAL over a
		// non-empty blob store is restore-from-backup, and recovery reads
		// below go through the tier.
		bs, err := ltree.NewBlobDir(blobDir)
		if err != nil {
			return err
		}
		if _, err := ltree.AttachBlobTier(w, bs, ltree.BlobTierOptions{
			Prefix: blobPrefix, ReleaseLocal: blobRelease,
		}); err != nil {
			return fmt.Errorf("attach blob tier %s: %w", blobDir, err)
		}
	}
	st, err := ltree.LoadLatest(w)
	if errors.Is(err, ltree.ErrNoVersion) {
		// Empty log: this is first boot, seed it.
		if seed == "" {
			return fmt.Errorf("WAL %s is empty and no -seed was given", walDir)
		}
		f, err := os.Open(seed)
		if err != nil {
			return err
		}
		st, err = ltree.Open(f, ltree.DefaultParams)
		f.Close()
		if err != nil {
			return err
		}
		if err := st.WithWAL(w, ltree.AutoCheckpoint(4<<20, 16384)); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}

	srv, err := storage.NewShipServer(w)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", shipAddr)
	if err != nil {
		return err
	}
	go srv.Serve(ln)

	src := w.(storage.TailSource)
	log.Printf("leader: http %s, shipping %s, wal %s (seq %d)", httpAddr, ln.Addr(), walDir, src.Seq())
	return http.ListenAndServe(httpAddr, newHandler(&leaderNode{Store: st, src: src}, wait))
}

// runForest opens (or creates) a document-sharded forest — every shard
// recovers from its own WAL in parallel — and serves HTTP.
func runForest(dir string, shards int, httpAddr string, wait time.Duration) error {
	f, err := ltree.OpenForest(dir, ltree.ForestOptions{Shards: shards})
	if err != nil {
		return err
	}
	s := f.Stats()
	log.Printf("forest: http %s, dir %s (%d shards, %d docs)", httpAddr, dir, s.Shards, s.Docs)
	return http.ListenAndServe(httpAddr, newHandler(&forestNode{Forest: f}, wait))
}

// runFollower attaches a replica to a remote leader and serves reads.
// With a blob store configured, the bootstrap (checkpoint + segment
// tail) comes from the object store and only the live tail from the
// leader.
func runFollower(leaderAddr, httpAddr, blobDir, blobPrefix string, wait time.Duration) error {
	dial := func() (net.Conn, error) { return net.Dial("tcp", leaderAddr) }
	src, err := storage.OpenRemoteTail(dial, storage.RemoteOptions{})
	if err != nil {
		return fmt.Errorf("attach to leader %s: %w", leaderAddr, err)
	}
	var f *ltree.Follower
	if blobDir != "" {
		bs, err := ltree.NewBlobDir(blobDir)
		if err != nil {
			src.Close()
			return err
		}
		f, err = ltree.OpenFollowerSeeded(src, bs, blobPrefix)
		if err != nil {
			src.Close()
			return fmt.Errorf("blob-seeded bootstrap from %s: %w", blobDir, err)
		}
		log.Printf("follower: seeded from blob store %s (prefix %q)", blobDir, blobPrefix)
	} else {
		f, err = ltree.OpenFollower(src)
		if err != nil {
			src.Close()
			return fmt.Errorf("bootstrap from leader %s: %w", leaderAddr, err)
		}
	}
	log.Printf("follower: http %s, leader %s (applied seq %d)", httpAddr, leaderAddr, f.Stats().AppliedSeq)
	return http.ListenAndServe(httpAddr, newHandler(&followerNode{Follower: f}, wait))
}
