package main

// End-to-end daemon test: a leader node (WAL + ship listener on a real
// TCP port) and a follower attached over the wire, both serving the
// HTTP surface. Pins the read-your-writes flow the daemon exists for:
// write to the leader, read from the follower with wait_seq.

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
		}
	}
	return resp
}

func TestLeaderFollowerHTTP(t *testing.T) {
	// Leader: seeded store on a WAL, replication listener on a real port.
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st, err := ltree.OpenString(`<shop><item><name>mug</name></item></shop>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	ship, err := storage.NewShipServer(w)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ship.Serve(ln)
	defer ship.Close()

	src := w.(storage.TailSource)
	leaderSrv := httptest.NewServer(newHandler(&leaderNode{Store: st, src: src}, 5*time.Second))
	defer leaderSrv.Close()

	// Follower: attaches over TCP, serves the same surface.
	addr := ln.Addr().String()
	rsrc, err := storage.OpenRemoteTail(func() (net.Conn, error) { return net.Dial("tcp", addr) }, storage.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrc.Close()
	f, err := ltree.OpenFollower(rsrc)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	followerSrv := httptest.NewServer(newHandler(&followerNode{Follower: f}, time.Second))
	defer followerSrv.Close()

	// Both roles answer the seeded query.
	for _, srv := range []*httptest.Server{leaderSrv, followerSrv} {
		var res resultJSON
		if resp := getJSON(t, srv, "/v1/query?q=//item/name", &res); resp.StatusCode != http.StatusOK {
			t.Fatalf("query: status %d", resp.StatusCode)
		}
		if res.Count != 1 || res.Results[0].Tag != "name" || res.Results[0].Text != "mug" {
			t.Fatalf("query result = %+v", res)
		}
	}

	// Write on the leader, then a wait_seq read on the follower sees it.
	resp, err := leaderSrv.Client().Post(
		leaderSrv.URL+"/v1/insert?parent=//shop", "application/xml",
		strings.NewReader(`<item><name>pot</name></item>`))
	if err != nil {
		t.Fatal(err)
	}
	var ins struct {
		Seq uint64 `json:"seq"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ins); err != nil || ins.Seq == 0 {
		t.Fatalf("insert reply %q: seq=%d err=%v", body, ins.Seq, err)
	}
	var res resultJSON
	if resp := getJSON(t, followerSrv, "/v1/query?q=//item&wait_seq="+jsonUint(ins.Seq), &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower wait_seq query: status %d", resp.StatusCode)
	}
	if res.Count != 2 {
		t.Fatalf("follower sees %d items after wait_seq=%d, want 2", res.Count, ins.Seq)
	}

	// curl -d posts with a form content type; the handler must still read
	// the body as the raw XML fragment, not consume it as form data.
	resp, err = leaderSrv.Client().Post(
		leaderSrv.URL+"/v1/insert?parent=//shop", "application/x-www-form-urlencoded",
		strings.NewReader(`<item><name>urn</name></item>`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("form-typed insert: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ins); err != nil || ins.Seq == 0 {
		t.Fatalf("form-typed insert reply %q: seq=%d err=%v", body, ins.Seq, err)
	}
	if resp := getJSON(t, followerSrv, "/v1/query?q=//item/name&wait_seq="+jsonUint(ins.Seq), &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower query after form-typed insert: status %d", resp.StatusCode)
	}
	if res.Count != 3 {
		t.Fatalf("follower sees %d names after form-typed insert, want 3", res.Count)
	}

	// Labels answer ancestry straight off the wire format.
	var items, names resultJSON
	getJSON(t, followerSrv, "/v1/elements?tag=item", &items)
	getJSON(t, followerSrv, "/v1/elements?tag=name", &names)
	if len(items.Results) != 3 || len(names.Results) != 3 {
		t.Fatalf("elements: %d items, %d names", len(items.Results), len(names.Results))
	}
	contains := func(a, d elemJSON) bool { return a.Begin < d.Begin && d.End < a.End }
	for _, nm := range names.Results {
		anc := 0
		for _, it := range items.Results {
			if contains(it, nm) {
				anc++
			}
		}
		if anc != 1 {
			t.Fatalf("name %+v has %d item ancestors by label, want 1", nm, anc)
		}
	}

	// A follower refuses writes loudly.
	resp, err = followerSrv.Client().Post(followerSrv.URL+"/v1/insert?parent=//shop", "application/xml", strings.NewReader(`<x/>`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower insert: status %d, want 403", resp.StatusCode)
	}

	// A wait_seq the replica can never reach times out as 504.
	if resp := getJSON(t, followerSrv, "/v1/query?q=//item&wait_seq=999999", nil); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unreachable wait_seq: status %d, want 504", resp.StatusCode)
	}

	// Document routing is a forest feature: a plain leader says so (501),
	// a follower refuses writes outright (403).
	if resp, _ := doReq(t, leaderSrv, http.MethodPut, "/v1/doc?id=d1", `<d/>`); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("leader PUT /v1/doc: status %d, want 501", resp.StatusCode)
	}
	if resp, _ := doReq(t, followerSrv, http.MethodPut, "/v1/doc?id=d1", `<d/>`); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower PUT /v1/doc: status %d, want 403", resp.StatusCode)
	}

	// Stats report the roles, plus per-backend txn pin accounting (the
	// follower's replica store is a real store too).
	var stats map[string]any
	getJSON(t, leaderSrv, "/v1/stats", &stats)
	if stats["role"] != "leader" {
		t.Fatalf("leader stats = %v", stats)
	}
	if _, ok := stats["txn_open"]; !ok {
		t.Fatalf("leader stats missing txn_open: %v", stats)
	}
	getJSON(t, followerSrv, "/v1/stats", &stats)
	if stats["role"] != "follower" {
		t.Fatalf("follower stats = %v", stats)
	}
	if _, ok := stats["txn_retired"]; !ok {
		t.Fatalf("follower stats missing txn_retired: %v", stats)
	}
}

func doReq(t *testing.T, srv *httptest.Server, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestForestHTTP drives the forest role end to end: whole-document
// routing over /v1/doc, scatter-gather queries, targeted inserts routed
// to the owning shard, and the aggregated stats surface.
func TestForestHTTP(t *testing.T) {
	f, err := ltree.OpenForest(t.TempDir(), ltree.ForestOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	srv := httptest.NewServer(newHandler(&forestNode{Forest: f}, time.Second))
	defer srv.Close()

	// Upsert documents; each lands on its id's shard.
	var put struct {
		ID  string `json:"id"`
		Seq uint64 `json:"seq"`
	}
	for i, src := range []string{
		`<shop><item><name>mug</name></item></shop>`,
		`<shop><item><name>pot</name></item><item><name>urn</name></item></shop>`,
		`<archive><box/></archive>`,
	} {
		resp, body := doReq(t, srv, http.MethodPut, "/v1/doc?id=doc-"+jsonUint(uint64(i)), src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT doc %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &put); err != nil || put.Seq == 0 {
			t.Fatalf("PUT doc %d reply %q: seq=%d err=%v", i, body, put.Seq, err)
		}
	}

	// Queries fan out across every shard and merge.
	var res resultJSON
	if resp := getJSON(t, srv, "/v1/query?q=//item/name", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	if res.Count != 3 {
		t.Fatalf("forest query found %d names, want 3", res.Count)
	}

	// Insert routes through the owning document's shard. The parent
	// expression must name exactly one element forest-wide.
	resp, body := doReq(t, srv, http.MethodPost, "/v1/insert?parent=//archive", `<box/>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, srv, http.MethodPost, "/v1/insert?parent=//shop", `<x/>`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous insert: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/elements?tag=box", &res); resp.StatusCode != http.StatusOK || res.Count != 2 {
		t.Fatalf("boxes after insert: status %d count %d, want 2", resp.StatusCode, res.Count)
	}

	// Delete drops the document; deleting it again is a 404.
	if resp, body := doReq(t, srv, http.MethodDelete, "/v1/doc?id=doc-2", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE doc-2: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, srv, http.MethodDelete, "/v1/doc?id=doc-2", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE missing doc: status %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, srv, "/v1/elements?tag=box", &res); resp.StatusCode != http.StatusOK || res.Count != 0 {
		t.Fatalf("boxes after delete: status %d count %d, want 0", resp.StatusCode, res.Count)
	}

	// Stats aggregate per-shard counters under the forest role.
	var stats map[string]any
	getJSON(t, srv, "/v1/stats", &stats)
	if stats["role"] != "forest" || stats["shards"] != float64(3) || stats["docs"] != float64(2) {
		t.Fatalf("forest stats = %v", stats)
	}
	shards, ok := stats["shard"].([]any)
	if !ok || len(shards) != 3 {
		t.Fatalf("forest stats shard breakdown = %v", stats["shard"])
	}
	for i, raw := range shards {
		m, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("shard %d stats = %v", i, raw)
		}
		for _, k := range []string{"docs", "seq", "index_version", "txn_open", "txn_retired"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("shard %d stats missing %q: %v", i, k, m)
			}
		}
	}
}

// TestLeaderBlobStatsAndSeededFollower drives the blob-tier daemon path
// end to end: a leader with an attached tier exposes wal/blob sections
// in /v1/stats, and a follower seeded from the same blob store (over a
// real replication socket for the live tail) converges and answers the
// same queries.
func TestLeaderBlobStatsAndSeededFollower(t *testing.T) {
	blobRoot := t.TempDir()
	bs, err := ltree.NewBlobDir(blobRoot)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tier, err := ltree.AttachBlobTier(w, bs, ltree.BlobTierOptions{Prefix: "node-a"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ltree.OpenString(`<shop><item><name>mug</name></item></shop>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	var seq uint64
	for i := 0; i < 20; i++ {
		if _, err := st.InsertXML(st.Root(), 0, `<item><name>bulk</name></item>`); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ws, ok := st.WALStats()
	if !ok {
		t.Fatal("leader store has no WAL stats")
	}
	seq = ws.Seq
	if err := tier.Barrier(30 * time.Second); err != nil {
		t.Fatalf("tier barrier: %v", err)
	}

	ship, err := storage.NewShipServer(w)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ship.Serve(ln)
	defer ship.Close()

	leaderSrv := httptest.NewServer(newHandler(&leaderNode{Store: st, src: w.(storage.TailSource)}, 5*time.Second))
	defer leaderSrv.Close()

	// /v1/stats carries the retention + tier sections.
	var stats map[string]any
	getJSON(t, leaderSrv, "/v1/stats", &stats)
	wal, ok := stats["wal"].(map[string]any)
	if !ok {
		t.Fatalf("leader stats missing wal section: %v", stats)
	}
	for _, k := range []string{"checkpoint_seq", "local_segments", "oldest_local_base", "leases", "lease_floor"} {
		if _, ok := wal[k]; !ok {
			t.Fatalf("wal stats missing %q: %v", k, wal)
		}
	}
	blob, ok := stats["blob"].(map[string]any)
	if !ok {
		t.Fatalf("leader stats missing blob section: %v", stats)
	}
	for _, k := range []string{"durable_seq", "upload_lag", "uploaded_segments", "uploaded_checkpoints", "local_released", "manifest_writes"} {
		if _, ok := blob[k]; !ok {
			t.Fatalf("blob stats missing %q: %v", k, blob)
		}
	}
	if blob["upload_lag"] != float64(0) || blob["durable_seq"] != float64(seq) {
		t.Fatalf("tier caught up but stats say %v", blob)
	}

	// Blob-seeded follower over the wire: bootstrap from the object
	// store, live tail from the leader socket.
	addr := ln.Addr().String()
	rsrc, err := storage.OpenRemoteTail(func() (net.Conn, error) { return net.Dial("tcp", addr) }, storage.RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrc.Close()
	f, err := ltree.OpenFollowerSeeded(rsrc, bs, "node-a")
	if err != nil {
		t.Fatalf("blob-seeded bootstrap: %v", err)
	}
	defer f.Close()
	followerSrv := httptest.NewServer(newHandler(&followerNode{Follower: f}, 5*time.Second))
	defer followerSrv.Close()

	// A write on the leader after the seed reaches the follower live.
	resp, body := doReq(t, leaderSrv, http.MethodPost, "/v1/insert?parent=//shop", `<item><name>fresh</name></item>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d: %s", resp.StatusCode, body)
	}
	var ins struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(body, &ins); err != nil || ins.Seq <= seq {
		t.Fatalf("insert reply %q (prev seq %d): %v", body, seq, err)
	}
	var res resultJSON
	if resp := getJSON(t, followerSrv, "/v1/query?q=//item/name&wait_seq="+jsonUint(ins.Seq), &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower wait_seq query: status %d", resp.StatusCode)
	}
	if res.Count != 22 { // 1 seeded + 20 bulk + 1 fresh
		t.Fatalf("seeded follower sees %d names, want 22", res.Count)
	}
}

func TestHealthz(t *testing.T) {
	st, err := ltree.OpenString(`<r/>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(&leaderNode{Store: st, src: w.(storage.TailSource)}, time.Second))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func jsonUint(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
