package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// newLeaderServer builds a WAL-backed leader and its HTTP server with
// the given long-poll budget.
func newLeaderServer(t *testing.T, maxWait time.Duration) (*ltree.Store, *httptest.Server) {
	t.Helper()
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	st, err := ltree.OpenString(`<shop><item><name>mug</name></item></shop>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(&leaderNode{Store: st, src: w.(storage.TailSource)}, maxWait))
	t.Cleanup(srv.Close)
	return st, srv
}

// TestChangesEndpoint drives the /v1/changes long-poll on a leader: a
// commit inside the poll window surfaces as a 200 change set, an idle
// window drains to 204, and a retired cursor is a 410.
func TestChangesEndpoint(t *testing.T) {
	st, srv := newLeaderServer(t, 2*time.Second)

	// Commit while the poll is parked: the feed must wake it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		_ = st.Update(func(b *ltree.Batch) error {
			_, err := b.InsertXML(st.Elements("shop")[0], 0, `<item><name>pot</name></item>`)
			return err
		})
	}()
	var cj changesJSON
	resp := getJSON(t, srv, "/v1/changes", &cj)
	<-done
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changes during commit: status %d", resp.StatusCode)
	}
	if cj.To <= cj.From || cj.Count != len(cj.Changes) || cj.Count == 0 {
		t.Fatalf("changes reply: %+v", cj)
	}
	sawItem := false
	for _, c := range cj.Changes {
		if c.Kind == "added" && c.Tag == "item" {
			sawItem = true
		}
	}
	if !sawItem {
		t.Fatalf("added <item> missing from %+v", cj.Changes)
	}
	if cj.ToRoot == "" || cj.FromRoot == "" || cj.ToRoot == cj.FromRoot {
		t.Fatalf("change set roots not populated: from=%q to=%q", cj.FromRoot, cj.ToRoot)
	}

	// since=<old pinned version> backfills immediately, no new commit
	// needed.
	pin := st.SnapshotView()
	defer pin.Close()
	if err := st.Update(func(b *ltree.Batch) error {
		_, err := b.InsertXML(st.Elements("shop")[0], 0, `<item><name>urn</name></item>`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	resp = getJSON(t, srv, "/v1/changes?since="+jsonUint(pin.Version()), &cj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("changes since pinned: status %d", resp.StatusCode)
	}
	if cj.From != pin.Version() || cj.To != st.IndexVersion() {
		t.Fatalf("backfill %d→%d, want %d→%d", cj.From, cj.To, pin.Version(), st.IndexVersion())
	}

	// A cursor no transaction pins anymore is gone, not silently reset.
	if resp := getJSON(t, srv, "/v1/changes?since=1", nil); resp.StatusCode != http.StatusGone {
		t.Fatalf("changes since retired: status %d, want 410", resp.StatusCode)
	}

	// Garbage cursor.
	if resp := getJSON(t, srv, "/v1/changes?since=no", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("changes with bad since: status %d, want 400", resp.StatusCode)
	}
}

// TestChangesEndpointTimeout pins the idle contract: no commit inside
// the window means 204, not a hang and not an empty 200.
func TestChangesEndpointTimeout(t *testing.T) {
	_, srv := newLeaderServer(t, 200*time.Millisecond)
	start := time.Now()
	resp := getJSON(t, srv, "/v1/changes", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle changes: status %d, want 204", resp.StatusCode)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("idle changes poll did not respect the wait budget")
	}
}

// TestChangesEndpointScoped checks path scoping through the HTTP
// surface: an out-of-scope commit does not satisfy the poll, an
// in-scope one does.
func TestChangesEndpointScoped(t *testing.T) {
	st, srv := newLeaderServer(t, 2*time.Second)
	go func() {
		time.Sleep(100 * time.Millisecond)
		// Out of scope, appended after <item> so the insert allocates
		// labels from the trailing gap instead of relabeling the scoped
		// subtree (a relabel of <item> itself would be in scope).
		_ = st.Update(func(b *ltree.Batch) error {
			shop := st.Elements("shop")[0]
			_, err := b.InsertXML(shop, shop.NumChildren(), `<aside/>`)
			return err
		})
		time.Sleep(100 * time.Millisecond)
		_ = st.Update(func(b *ltree.Batch) error { // in scope
			_, err := b.InsertXML(st.Elements("item")[0], 0, `<name>alt</name>`)
			return err
		})
	}()
	var cj changesJSON
	resp := getJSON(t, srv, "/v1/changes?path=//item", &cj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scoped changes: status %d", resp.StatusCode)
	}
	for _, c := range cj.Changes {
		if c.Tag == "aside" {
			t.Fatalf("out-of-scope change delivered: %+v", c)
		}
	}
	sawName := false
	for _, c := range cj.Changes {
		if c.Kind == "added" && c.Tag == "name" {
			sawName = true
		}
	}
	if !sawName {
		t.Fatalf("in-scope added <name> missing from %+v", cj.Changes)
	}
}

// TestChangesEndpointForest pins the forest answer: its history is
// per-shard, so the composite feed is refused with 501 rather than
// served wrong.
func TestChangesEndpointForest(t *testing.T) {
	f, err := ltree.OpenForest(t.TempDir(), ltree.ForestOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fsrv := httptest.NewServer(newHandler(&forestNode{Forest: f}, time.Second))
	defer fsrv.Close()
	if resp := getJSON(t, fsrv, "/v1/changes", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("forest changes: status %d, want 501", resp.StatusCode)
	}
}

// TestForestStatsTiers pins the /v1/stats regression this PR fixes: a
// forest whose shards own WAL backends must report the wal (and, when
// tiered, blob) sections both per shard and as forest-wide totals —
// they were silently omitted before.
func TestForestStatsTiers(t *testing.T) {
	f, err := ltree.OpenForest(t.TempDir(), ltree.ForestOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Put("d1", `<site><people><person>alice</person></people></site>`); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(&forestNode{Forest: f}, time.Second))
	defer srv.Close()

	var stats map[string]any
	if resp := getJSON(t, srv, "/v1/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	wal, ok := stats["wal"].(map[string]any)
	if !ok {
		t.Fatalf("forest stats lack a wal section: %v", stats)
	}
	if _, ok := wal["local_segments"]; !ok {
		t.Fatalf("forest wal section lacks local_segments: %v", wal)
	}
	shards, ok := stats["shard"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("forest stats lack the per-shard breakdown: %v", stats)
	}
	for i, raw := range shards {
		sh, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("shard %d stats: %v", i, raw)
		}
		if _, ok := sh["wal"].(map[string]any); !ok {
			t.Fatalf("shard %d stats lack a wal section: %v", i, sh)
		}
		root, ok := sh["root_hash"].(string)
		if !ok || len(root) != 64 {
			t.Fatalf("shard %d stats lack a root_hash: %v", i, sh)
		}
	}
}

// TestChangesEndpointFollower keeps the follower half of the feed
// covered without a TCP ship server: the follower tails the leader's
// in-process WAL handle, and its feed fires off the apply seam.
func TestChangesEndpointFollower(t *testing.T) {
	w, err := ltree.NewWALBackend(t.TempDir(), ltree.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st, err := ltree.OpenString(`<shop><item><name>mug</name></item></shop>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	f, err := ltree.OpenFollower(w)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fsrv := httptest.NewServer(newHandler(&followerNode{Follower: f}, 2*time.Second))
	defer fsrv.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = st.Update(func(b *ltree.Batch) error {
			_, err := b.InsertXML(st.Elements("shop")[0], 0, `<item><name>jar</name></item>`)
			return err
		})
	}()
	var cj changesJSON
	resp := getJSON(t, fsrv, "/v1/changes", &cj)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower changes: status %d", resp.StatusCode)
	}
	if cj.Count == 0 || !strings.Contains(string(mustJSON(t, cj)), `"added"`) {
		t.Fatalf("follower change set: %+v", cj)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
