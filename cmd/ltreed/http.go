// HTTP surface shared by leader and follower nodes.
//
// Endpoints:
//
//	GET    /healthz                           liveness probe
//	GET    /v1/stats                          role, seq, lag, txn pins,
//	                                          index version — aggregated
//	                                          per shard on a forest node
//	GET    /v1/query?q=EXPR[&wait_seq=N]      path query over the store
//	GET    /v1/elements?tag=T[&wait_seq=N]    all elements with tag T
//	POST   /v1/insert?parent=EXPR[&idx=I]     write; body is an XML
//	                                          fragment; returns the
//	                                          commit's WAL seq
//	PUT    /v1/doc?id=ID                      forest-only: upsert a whole
//	                                          document; body is its XML
//	DELETE /v1/doc?id=ID                      forest-only: drop a document
//
// wait_seq gives a follower read read-your-writes freshness: pass the
// seq a leader write returned and the handler blocks (bounded by -wait)
// until the replica has applied it, answering 504 on timeout so the
// client can retry or fall back to the leader.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// node is what the HTTP layer needs from any role: the shared
// snapshot-isolated read surface, a freshness gate, and write hooks
// (leaders and forests commit, followers refuse; whole-document routing
// exists only on forests).
type node interface {
	Query(expr string) ([]*ltree.Elem, error)
	Elements(tag string) []*ltree.Elem
	Label(n *ltree.Elem) (ltree.Label, error)
	IndexVersion() uint64
	WaitFor(seq uint64, timeout time.Duration) error
	Insert(parentExpr string, idx int, fragment string) (uint64, error)
	PutDoc(id, src string) (uint64, error)
	DeleteDoc(id string) (uint64, error)
	Stats() map[string]any
}

// errReadOnly rejects writes on a follower.
var errReadOnly = errors.New("ltreed: node is a read-only follower; write to the leader")

// errNotForest rejects document routing on single-store roles.
var errNotForest = errors.New("ltreed: node is not a forest; start with -forest to route documents")

// leaderNode adapts a WAL-attached Store.
type leaderNode struct {
	st  *ltree.Store
	src storage.TailSource
}

func (l *leaderNode) Query(expr string) ([]*ltree.Elem, error) { return l.st.Query(expr) }
func (l *leaderNode) Elements(tag string) []*ltree.Elem        { return l.st.Elements(tag) }
func (l *leaderNode) Label(n *ltree.Elem) (ltree.Label, error) { return l.st.Label(n) }
func (l *leaderNode) IndexVersion() uint64                     { return l.st.IndexVersion() }

// WaitFor on the leader is trivially satisfied: the store IS the
// durable state the seq refers to.
func (l *leaderNode) WaitFor(uint64, time.Duration) error { return nil }

func (l *leaderNode) Insert(parentExpr string, idx int, fragment string) (uint64, error) {
	parents, err := l.st.Query(parentExpr)
	if err != nil {
		return 0, err
	}
	if len(parents) != 1 {
		return 0, fmt.Errorf("ltreed: parent query %q matched %d elements, need exactly 1", parentExpr, len(parents))
	}
	if idx < 0 {
		idx = len(parents[0].Children())
	}
	if _, err := l.st.InsertXML(parents[0], idx, fragment); err != nil {
		return 0, err
	}
	return l.src.Seq(), nil
}

func (l *leaderNode) PutDoc(string, string) (uint64, error) { return 0, errNotForest }
func (l *leaderNode) DeleteDoc(string) (uint64, error)      { return 0, errNotForest }

func (l *leaderNode) Stats() map[string]any {
	open, retired := l.st.TxnStats()
	m := map[string]any{
		"role":          "leader",
		"seq":           l.src.Seq(),
		"rebases":       l.src.Rebases(),
		"index_version": l.st.IndexVersion(),
		"txn_open":      open,
		"txn_retired":   retired,
	}
	// WAL retention state, and the blob tier's accounting when one is
	// attached — dashboards watch blob.upload_lag (sealed records not yet
	// object-store durable) and wal.local_segments (disk footprint).
	if ws, ok := l.st.WALStats(); ok {
		m["wal"] = map[string]any{
			"checkpoint_seq":    ws.CheckpointSeq,
			"local_segments":    ws.LocalSegments,
			"oldest_local_base": ws.OldestLocalBase,
			"leases":            ws.Leases,
			"lease_floor":       ws.LeaseFloor,
		}
		if ws.Tier != nil {
			m["blob"] = map[string]any{
				"durable_seq":          ws.Tier.DurableSeq,
				"upload_lag":           ws.Tier.UploadLag,
				"pending_segments":     ws.Tier.PendingSegments,
				"uploaded_segments":    ws.Tier.UploadedSegments,
				"uploaded_checkpoints": ws.Tier.UploadedCheckpoints,
				"bytes_uploaded":       ws.Tier.BytesUploaded,
				"upload_retries":       ws.Tier.UploadRetries,
				"fetches":              ws.Tier.Fetches,
				"fetch_bytes":          ws.Tier.FetchBytes,
				"local_released":       ws.Tier.LocalReleased,
				"manifest_writes":      ws.Tier.ManifestWrites,
			}
		}
	}
	return m
}

// followerNode adapts a replicating Follower.
type followerNode struct {
	f *ltree.Follower
}

func (n *followerNode) Query(expr string) ([]*ltree.Elem, error) { return n.f.Query(expr) }
func (n *followerNode) Elements(tag string) []*ltree.Elem        { return n.f.Elements(tag) }
func (n *followerNode) Label(e *ltree.Elem) (ltree.Label, error) { return n.f.Label(e) }
func (n *followerNode) IndexVersion() uint64                     { return n.f.IndexVersion() }
func (n *followerNode) WaitFor(seq uint64, timeout time.Duration) error {
	return n.f.WaitFor(seq, timeout)
}
func (n *followerNode) Insert(string, int, string) (uint64, error) { return 0, errReadOnly }
func (n *followerNode) PutDoc(string, string) (uint64, error)      { return 0, errReadOnly }
func (n *followerNode) DeleteDoc(string) (uint64, error)           { return 0, errReadOnly }

func (n *followerNode) Stats() map[string]any {
	s := n.f.Stats()
	open, retired := n.f.TxnStats()
	m := map[string]any{
		"role":          "follower",
		"applied_seq":   s.AppliedSeq,
		"leader_seq":    s.LeaderSeq,
		"lag":           s.Lag,
		"batches":       s.Batches,
		"running":       s.Running,
		"index_version": n.f.IndexVersion(),
		"txn_open":      open,
		"txn_retired":   retired,
	}
	if s.Err != nil {
		m["error"] = s.Err.Error()
	}
	return m
}

// forestNode adapts a sharded Forest: reads scatter-gather across every
// shard, writes route to the owning shard, and /v1/doc gains meaning.
type forestNode struct {
	f *ltree.Forest
}

func (n *forestNode) Query(expr string) ([]*ltree.Elem, error) { return n.f.Query(expr) }
func (n *forestNode) Elements(tag string) []*ltree.Elem        { return n.f.Elements(tag) }
func (n *forestNode) Label(e *ltree.Elem) (ltree.Label, error) { return n.f.Label(e) }

// IndexVersion sums the per-shard versions: each shard commit bumps
// exactly one of them, so the sum is a monotone forest-wide version.
func (n *forestNode) IndexVersion() uint64 {
	var total uint64
	for _, sh := range n.f.Stats().Shard {
		total += sh.IndexVersion
	}
	return total
}

// WaitFor on a forest leader is trivially satisfied, as on a store
// leader: the shards ARE the durable state any returned seq refers to.
func (n *forestNode) WaitFor(uint64, time.Duration) error { return nil }

// shardSeq is the WAL seq a write to docID just advanced — the
// per-shard freshness token handed back to clients.
func (n *forestNode) shardSeq(docID string) uint64 {
	return n.f.Stats().Shard[n.f.ShardFor(docID)].Seq
}

func (n *forestNode) Insert(parentExpr string, idx int, fragment string) (uint64, error) {
	parents, err := n.f.Query(parentExpr)
	if err != nil {
		return 0, err
	}
	if len(parents) != 1 {
		return 0, fmt.Errorf("ltreed: parent query %q matched %d elements, need exactly 1", parentExpr, len(parents))
	}
	id, ok := n.f.DocOf(parents[0])
	if !ok {
		return 0, fmt.Errorf("ltreed: parent of %q is not inside a forest document", parentExpr)
	}
	if idx < 0 {
		idx = len(parents[0].Children())
	}
	err = n.f.Update(id, func(b *ltree.Batch, _ *ltree.Elem) error {
		_, err := b.InsertXML(parents[0], idx, fragment)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n.shardSeq(id), nil
}

func (n *forestNode) PutDoc(id, src string) (uint64, error) {
	if _, err := n.f.Put(id, src); err != nil {
		return 0, err
	}
	return n.shardSeq(id), nil
}

func (n *forestNode) DeleteDoc(id string) (uint64, error) {
	// Capture the owning shard first: the registry forgets the id the
	// moment the delete commits.
	shard := n.f.ShardFor(id)
	if err := n.f.Delete(id); err != nil {
		return 0, err
	}
	return n.f.Stats().Shard[shard].Seq, nil
}

// Stats aggregates the per-shard counters instead of assuming one
// backend: forest-wide totals first, then the per-shard breakdown.
func (n *forestNode) Stats() map[string]any {
	s := n.f.Stats()
	var open, retired int
	var seq, iv uint64
	perShard := make([]map[string]any, len(s.Shard))
	for i, sh := range s.Shard {
		open += sh.TxnOpen
		retired += sh.TxnRetired
		seq += sh.Seq
		iv += sh.IndexVersion
		perShard[i] = map[string]any{
			"docs":          sh.Docs,
			"seq":           sh.Seq,
			"index_version": sh.IndexVersion,
			"txn_open":      sh.TxnOpen,
			"txn_retired":   sh.TxnRetired,
		}
	}
	return map[string]any{
		"role":          "forest",
		"shards":        s.Shards,
		"docs":          s.Docs,
		"seq":           seq,
		"index_version": iv,
		"txn_open":      open,
		"txn_retired":   retired,
		"shard":         perShard,
	}
}

// elemJSON is one query result on the wire: the element, its interval
// label (the paper's replication currency — label comparisons alone
// answer ancestry), and its immediate text content.
type elemJSON struct {
	Tag   string            `json:"tag"`
	Begin uint64            `json:"begin"`
	End   uint64            `json:"end"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Text  string            `json:"text,omitempty"`
}

type resultJSON struct {
	IndexVersion uint64     `json:"index_version"`
	Count        int        `json:"count"`
	Results      []elemJSON `json:"results"`
}

func newHandler(n node, maxWait time.Duration) http.Handler {
	h := &handler{n: n, maxWait: maxWait}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/query", h.query)
	mux.HandleFunc("GET /v1/elements", h.elements)
	mux.HandleFunc("POST /v1/insert", h.insert)
	mux.HandleFunc("PUT /v1/doc", h.putDoc)
	mux.HandleFunc("DELETE /v1/doc", h.deleteDoc)
	return mux
}

type handler struct {
	n       node
	maxWait time.Duration
}

// fresh applies the wait_seq freshness gate; a false return means the
// response has already been written.
func (h *handler) fresh(w http.ResponseWriter, r *http.Request) bool {
	raw := r.URL.Query().Get("wait_seq")
	if raw == "" {
		return true
	}
	seq, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, "bad wait_seq: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := h.n.WaitFor(seq, h.maxWait); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ltree.ErrWaitTimeout) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return false
	}
	return true
}

func (h *handler) render(w http.ResponseWriter, elems []*ltree.Elem) {
	out := resultJSON{IndexVersion: h.n.IndexVersion(), Count: len(elems), Results: make([]elemJSON, 0, len(elems))}
	for _, e := range elems {
		ej := elemJSON{Tag: e.Tag()}
		if lab, err := h.n.Label(e); err == nil {
			ej.Begin, ej.End = lab.Begin, lab.End
		}
		if attrs := e.Attrs(); len(attrs) > 0 {
			ej.Attrs = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ej.Attrs[a.Name] = a.Value
			}
		}
		for _, c := range e.Children() {
			if c.Kind() == ltree.TextNode {
				ej.Text += c.Data()
			}
		}
		out.Results = append(out.Results, ej)
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
		return
	}
	if !h.fresh(w, r) {
		return
	}
	elems, err := h.n.Query(expr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.render(w, elems)
}

func (h *handler) elements(w http.ResponseWriter, r *http.Request) {
	tag := r.URL.Query().Get("tag")
	if tag == "" {
		http.Error(w, "missing tag", http.StatusBadRequest)
		return
	}
	if !h.fresh(w, r) {
		return
	}
	h.render(w, h.n.Elements(tag))
}

func (h *handler) insert(w http.ResponseWriter, r *http.Request) {
	parent := r.URL.Query().Get("parent")
	if parent == "" {
		http.Error(w, "missing parent", http.StatusBadRequest)
		return
	}
	idx := -1
	if raw := r.URL.Query().Get("idx"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			http.Error(w, "bad idx: "+err.Error(), http.StatusBadRequest)
			return
		}
		idx = v
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := h.n.Insert(parent, idx, string(body))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq})
}

func (h *handler) putDoc(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := h.n.PutDoc(id, string(body))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "seq": seq})
}

func (h *handler) deleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	seq, err := h.n.DeleteDoc(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "seq": seq})
}

// writeErr maps write-path errors onto HTTP statuses: follower refusals
// are 403, non-forest document routing is 501, a missing document is
// 404, everything else is the caller's fault.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errReadOnly):
		status = http.StatusForbidden
	case errors.Is(err, errNotForest):
		status = http.StatusNotImplemented
	case errors.Is(err, ltree.ErrNoDoc):
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.n.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
