// HTTP surface shared by leader and follower nodes.
//
// Endpoints:
//
//	GET    /healthz                           liveness probe
//	GET    /v1/stats                          role, seq, lag, txn pins,
//	                                          index version — aggregated
//	                                          per shard on a forest node
//	GET    /v1/query?q=EXPR[&wait_seq=N]      path query over the store
//	GET    /v1/elements?tag=T[&wait_seq=N]    all elements with tag T
//	GET    /v1/changes?since=N[&path=P]       long-poll change feed: the
//	                                          hash-pruned diff from index
//	                                          version N to the current one
//	                                          (or the next commit when
//	                                          already current; 204 after
//	                                          -wait with nothing new).
//	                                          path scopes to one subtree
//	                                          family. 501 on a forest —
//	                                          histories are per-shard.
//	POST   /v1/insert?parent=EXPR[&idx=I]     write; body is an XML
//	                                          fragment; returns the
//	                                          commit's WAL seq
//	PUT    /v1/doc?id=ID                      forest-only: upsert a whole
//	                                          document; body is its XML
//	DELETE /v1/doc?id=ID                      forest-only: drop a document
//
// wait_seq gives a follower read read-your-writes freshness: pass the
// seq a leader write returned and the handler blocks (bounded by -wait)
// until the replica has applied it, answering 504 on timeout so the
// client can retry or fall back to the leader.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// node is what the HTTP layer needs from any role: the shared
// snapshot-isolated read surface (ltree.Reader — every role implements
// it, so the handlers never switch on the concrete node type), plus a
// freshness gate, the change feed, and write hooks (leaders and forests
// commit, followers refuse; whole-document routing exists only on
// forests).
type node interface {
	ltree.Reader
	WaitFor(seq uint64, timeout time.Duration) error
	Changes(since uint64, path string, wait time.Duration) (*ltree.ChangeSet, error)
	Insert(parentExpr string, idx int, fragment string) (uint64, error)
	PutDoc(id, src string) (uint64, error)
	DeleteDoc(id string) (uint64, error)
	Stats() map[string]any
}

// errReadOnly rejects writes on a follower.
var errReadOnly = errors.New("ltreed: node is a read-only follower; write to the leader")

// errNotForest rejects document routing on single-store roles.
var errNotForest = errors.New("ltreed: node is not a forest; start with -forest to route documents")

// errForestChanges rejects the unified change feed on a forest: each
// shard has its own version history, so feeds are per-shard.
var errForestChanges = errors.New("ltreed: a forest has per-shard version histories; subscribe to one shard's store")

// watchSource is the change-feed seam shared by Store and Follower.
type watchSource interface {
	Watch(ltree.WatchOptions) (*ltree.Watcher, error)
}

// changesSince answers one long-poll: the first feed event (which
// covers since → current when the store has already moved, or the next
// commit otherwise), or nil after the wait bound with nothing to
// report.
func changesSince(src watchSource, since uint64, path string, wait time.Duration) (*ltree.ChangeSet, error) {
	w, err := src.Watch(ltree.WatchOptions{Since: since, Path: path, Buffer: 1})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	select {
	case ev, ok := <-w.C:
		if !ok {
			return nil, w.Err()
		}
		return ev.Changes, nil
	case <-time.After(wait):
		return nil, nil
	}
}

// leaderNode adapts a WAL-attached Store. The embedded Store provides
// the whole Reader surface; only the role-specific seams are written
// out.
type leaderNode struct {
	*ltree.Store
	src storage.TailSource
}

// WaitFor on the leader is trivially satisfied: the store IS the
// durable state the seq refers to.
func (l *leaderNode) WaitFor(uint64, time.Duration) error { return nil }

func (l *leaderNode) Changes(since uint64, path string, wait time.Duration) (*ltree.ChangeSet, error) {
	return changesSince(l.Store, since, path, wait)
}

func (l *leaderNode) Insert(parentExpr string, idx int, fragment string) (uint64, error) {
	parents, err := l.Query(parentExpr)
	if err != nil {
		return 0, err
	}
	if len(parents) != 1 {
		return 0, fmt.Errorf("ltreed: parent query %q matched %d elements, need exactly 1", parentExpr, len(parents))
	}
	if idx < 0 {
		idx = len(parents[0].Children())
	}
	if _, err := l.InsertXML(parents[0], idx, fragment); err != nil {
		return 0, err
	}
	return l.src.Seq(), nil
}

func (l *leaderNode) PutDoc(string, string) (uint64, error) { return 0, errNotForest }
func (l *leaderNode) DeleteDoc(string) (uint64, error)      { return 0, errNotForest }

func (l *leaderNode) Stats() map[string]any {
	rs := l.ReaderStats()
	m := map[string]any{
		"role":          "leader",
		"seq":           l.src.Seq(),
		"rebases":       l.src.Rebases(),
		"index_version": rs.IndexVersion,
		"root_hash":     fmt.Sprintf("%x", l.RootHash()),
		"txn_open":      rs.TxnOpen,
		"txn_retired":   rs.TxnRetired,
	}
	// WAL retention state, and the blob tier's accounting when one is
	// attached — dashboards watch blob.upload_lag (sealed records not yet
	// object-store durable) and wal.local_segments (disk footprint).
	if ws, ok := l.WALStats(); ok {
		m["wal"] = walJSON(ws)
		if ws.Tier != nil {
			m["blob"] = blobJSON(ws.Tier)
		}
	}
	return m
}

// walJSON renders one backend's retention state; shared by the leader
// and the per-shard forest sections.
func walJSON(ws ltree.WALStats) map[string]any {
	return map[string]any{
		"checkpoint_seq":    ws.CheckpointSeq,
		"local_segments":    ws.LocalSegments,
		"oldest_local_base": ws.OldestLocalBase,
		"leases":            ws.Leases,
		"lease_floor":       ws.LeaseFloor,
	}
}

func blobJSON(t *ltree.BlobTierStats) map[string]any {
	return map[string]any{
		"durable_seq":          t.DurableSeq,
		"upload_lag":           t.UploadLag,
		"pending_segments":     t.PendingSegments,
		"uploaded_segments":    t.UploadedSegments,
		"uploaded_checkpoints": t.UploadedCheckpoints,
		"bytes_uploaded":       t.BytesUploaded,
		"upload_retries":       t.UploadRetries,
		"fetches":              t.Fetches,
		"fetch_bytes":          t.FetchBytes,
		"local_released":       t.LocalReleased,
		"manifest_writes":      t.ManifestWrites,
	}
}

// followerNode adapts a replicating Follower; the embedded Follower
// provides Reader and WaitFor.
type followerNode struct {
	*ltree.Follower
}

func (n *followerNode) Changes(since uint64, path string, wait time.Duration) (*ltree.ChangeSet, error) {
	return changesSince(n.Follower, since, path, wait)
}

func (n *followerNode) Insert(string, int, string) (uint64, error) { return 0, errReadOnly }
func (n *followerNode) PutDoc(string, string) (uint64, error)      { return 0, errReadOnly }
func (n *followerNode) DeleteDoc(string) (uint64, error)           { return 0, errReadOnly }

func (n *followerNode) Stats() map[string]any {
	s := n.Follower.Stats()
	rs := n.ReaderStats()
	m := map[string]any{
		"role":          "follower",
		"applied_seq":   s.AppliedSeq,
		"leader_seq":    s.LeaderSeq,
		"lag":           s.Lag,
		"batches":       s.Batches,
		"running":       s.Running,
		"index_version": rs.IndexVersion,
		"root_hash":     fmt.Sprintf("%x", n.RootHash()),
		"txn_open":      rs.TxnOpen,
		"txn_retired":   rs.TxnRetired,
	}
	if s.Err != nil {
		m["error"] = s.Err.Error()
	}
	return m
}

// forestNode adapts a sharded Forest: reads scatter-gather across every
// shard, writes route to the owning shard, and /v1/doc gains meaning.
// The embedded Forest provides Reader (composite versions, merged
// streams).
type forestNode struct {
	*ltree.Forest
}

// WaitFor on a forest leader is trivially satisfied, as on a store
// leader: the shards ARE the durable state any returned seq refers to.
func (n *forestNode) WaitFor(uint64, time.Duration) error { return nil }

func (n *forestNode) Changes(uint64, string, time.Duration) (*ltree.ChangeSet, error) {
	return nil, errForestChanges
}

// shardSeq is the WAL seq a write to docID just advanced — the
// per-shard freshness token handed back to clients.
func (n *forestNode) shardSeq(docID string) uint64 {
	return n.Forest.Stats().Shard[n.ShardFor(docID)].Seq
}

func (n *forestNode) Insert(parentExpr string, idx int, fragment string) (uint64, error) {
	parents, err := n.Query(parentExpr)
	if err != nil {
		return 0, err
	}
	if len(parents) != 1 {
		return 0, fmt.Errorf("ltreed: parent query %q matched %d elements, need exactly 1", parentExpr, len(parents))
	}
	id, ok := n.DocOf(parents[0])
	if !ok {
		return 0, fmt.Errorf("ltreed: parent of %q is not inside a forest document", parentExpr)
	}
	if idx < 0 {
		idx = len(parents[0].Children())
	}
	err = n.Update(id, func(b *ltree.Batch, _ *ltree.Elem) error {
		_, err := b.InsertXML(parents[0], idx, fragment)
		return err
	})
	if err != nil {
		return 0, err
	}
	return n.shardSeq(id), nil
}

func (n *forestNode) PutDoc(id, src string) (uint64, error) {
	if _, err := n.Put(id, src); err != nil {
		return 0, err
	}
	return n.shardSeq(id), nil
}

func (n *forestNode) DeleteDoc(id string) (uint64, error) {
	// Capture the owning shard first: the registry forgets the id the
	// moment the delete commits.
	shard := n.ShardFor(id)
	if err := n.Forest.Delete(id); err != nil {
		return 0, err
	}
	return n.Forest.Stats().Shard[shard].Seq, nil
}

// Stats aggregates the per-shard counters instead of assuming one
// backend: forest-wide totals first, then the per-shard breakdown.
// Shards own real WAL backends, so each shard section carries the same
// wal/blob retention state a leader reports, and the forest totals sum
// the tier accounting across shards.
func (n *forestNode) Stats() map[string]any {
	s := n.Forest.Stats()
	var open, retired int
	var seq, iv uint64
	var segs, lag uint64
	var tiered bool
	perShard := make([]map[string]any, len(s.Shard))
	for i, sh := range s.Shard {
		open += sh.TxnOpen
		retired += sh.TxnRetired
		seq += sh.Seq
		iv += sh.IndexVersion
		perShard[i] = map[string]any{
			"docs":          sh.Docs,
			"seq":           sh.Seq,
			"index_version": sh.IndexVersion,
			"txn_open":      sh.TxnOpen,
			"txn_retired":   sh.TxnRetired,
			"root_hash":     fmt.Sprintf("%x", n.ShardStore(i).RootHash()),
		}
		if ws, ok := n.ShardStore(i).WALStats(); ok {
			perShard[i]["wal"] = walJSON(ws)
			segs += uint64(ws.LocalSegments)
			if ws.Tier != nil {
				perShard[i]["blob"] = blobJSON(ws.Tier)
				lag += ws.Tier.UploadLag
				tiered = true
			}
		}
	}
	m := map[string]any{
		"role":          "forest",
		"shards":        s.Shards,
		"docs":          s.Docs,
		"seq":           seq,
		"index_version": iv,
		"txn_open":      open,
		"txn_retired":   retired,
		"wal":           map[string]any{"local_segments": segs},
		"shard":         perShard,
	}
	if tiered {
		m["blob"] = map[string]any{"upload_lag": lag}
	}
	return m
}

// elemJSON is one query result on the wire: the element, its interval
// label (the paper's replication currency — label comparisons alone
// answer ancestry), and its immediate text content.
type elemJSON struct {
	Tag   string            `json:"tag"`
	Begin uint64            `json:"begin"`
	End   uint64            `json:"end"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Text  string            `json:"text,omitempty"`
}

type resultJSON struct {
	IndexVersion uint64     `json:"index_version"`
	Count        int        `json:"count"`
	Results      []elemJSON `json:"results"`
}

func newHandler(n node, maxWait time.Duration) http.Handler {
	h := &handler{n: n, maxWait: maxWait}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/changes", h.changes)
	mux.HandleFunc("GET /v1/query", h.query)
	mux.HandleFunc("GET /v1/elements", h.elements)
	mux.HandleFunc("POST /v1/insert", h.insert)
	mux.HandleFunc("PUT /v1/doc", h.putDoc)
	mux.HandleFunc("DELETE /v1/doc", h.deleteDoc)
	return mux
}

type handler struct {
	n       node
	maxWait time.Duration
}

// fresh applies the wait_seq freshness gate; a false return means the
// response has already been written.
func (h *handler) fresh(w http.ResponseWriter, r *http.Request) bool {
	raw := r.URL.Query().Get("wait_seq")
	if raw == "" {
		return true
	}
	seq, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, "bad wait_seq: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := h.n.WaitFor(seq, h.maxWait); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ltree.ErrWaitTimeout) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return false
	}
	return true
}

func (h *handler) render(w http.ResponseWriter, elems []*ltree.Elem) {
	out := resultJSON{IndexVersion: h.n.IndexVersion(), Count: len(elems), Results: make([]elemJSON, 0, len(elems))}
	for _, e := range elems {
		ej := elemJSON{Tag: e.Tag()}
		if lab, err := h.n.Label(e); err == nil {
			ej.Begin, ej.End = lab.Begin, lab.End
		}
		if attrs := e.Attrs(); len(attrs) > 0 {
			ej.Attrs = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ej.Attrs[a.Name] = a.Value
			}
		}
		for _, c := range e.Children() {
			if c.Kind() == ltree.TextNode {
				ej.Text += c.Data()
			}
		}
		out.Results = append(out.Results, ej)
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	expr := r.URL.Query().Get("q")
	if expr == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
		return
	}
	if !h.fresh(w, r) {
		return
	}
	elems, err := h.n.Query(expr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h.render(w, elems)
}

func (h *handler) elements(w http.ResponseWriter, r *http.Request) {
	tag := r.URL.Query().Get("tag")
	if tag == "" {
		http.Error(w, "missing tag", http.StatusBadRequest)
		return
	}
	if !h.fresh(w, r) {
		return
	}
	h.render(w, h.n.Elements(tag))
}

func (h *handler) insert(w http.ResponseWriter, r *http.Request) {
	parent := r.URL.Query().Get("parent")
	if parent == "" {
		http.Error(w, "missing parent", http.StatusBadRequest)
		return
	}
	idx := -1
	if raw := r.URL.Query().Get("idx"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			http.Error(w, "bad idx: "+err.Error(), http.StatusBadRequest)
			return
		}
		idx = v
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := h.n.Insert(parent, idx, string(body))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": seq})
}

func (h *handler) putDoc(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := h.n.PutDoc(id, string(body))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "seq": seq})
}

func (h *handler) deleteDoc(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	seq, err := h.n.DeleteDoc(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "seq": seq})
}

// writeErr maps write-path errors onto HTTP statuses: follower refusals
// are 403, non-forest document routing is 501, a missing document is
// 404, everything else is the caller's fault.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, errReadOnly):
		status = http.StatusForbidden
	case errors.Is(err, errNotForest):
		status = http.StatusNotImplemented
	case errors.Is(err, ltree.ErrNoDoc):
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

func (h *handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.n.Stats())
}

// changeJSON is one index entry change on the wire.
type changeJSON struct {
	Kind string `json:"kind"` // "added", "removed", "relabeled"
	Tag  string `json:"tag"`
	// Old/New are the entry's interval labels on each side; removed
	// changes carry only old, added only new, relabeled both.
	OldBegin uint64 `json:"old_begin,omitempty"`
	OldEnd   uint64 `json:"old_end,omitempty"`
	NewBegin uint64 `json:"new_begin,omitempty"`
	NewEnd   uint64 `json:"new_end,omitempty"`
	Level    int    `json:"level"`
	// OldLevel is the old entry's depth — it differs from Level only
	// for a relabel caused by a move across depths.
	OldLevel int `json:"old_level,omitempty"`
}

type changesJSON struct {
	From     uint64       `json:"from"`
	To       uint64       `json:"to"`
	FromRoot string       `json:"from_root"`
	ToRoot   string       `json:"to_root"`
	Count    int          `json:"count"`
	Changes  []changeJSON `json:"changes"`
}

func changeKind(k ltree.ChangeKind) string {
	switch k {
	case ltree.ChangeAdded:
		return "added"
	case ltree.ChangeRemoved:
		return "removed"
	case ltree.ChangeRelabeled:
		return "relabeled"
	}
	return "unknown"
}

// changes serves the long-poll change feed. 200 with the diff when the
// store moved past since (now, or within the wait bound), 204 when it
// did not, 410 when since has been retired (the client must resync from
// a full read), 501 on a forest.
func (h *handler) changes(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = v
	}
	cs, err := h.n.Changes(since, r.URL.Query().Get("path"), h.maxWait)
	switch {
	case errors.Is(err, errForestChanges):
		http.Error(w, err.Error(), http.StatusNotImplemented)
		return
	case errors.Is(err, ltree.ErrVersionRetired):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case cs == nil:
		w.WriteHeader(http.StatusNoContent)
		return
	}
	out := changesJSON{
		From:     cs.From,
		To:       cs.To,
		FromRoot: fmt.Sprintf("%x", cs.FromRoot),
		ToRoot:   fmt.Sprintf("%x", cs.ToRoot),
		Count:    len(cs.Changes),
		Changes:  make([]changeJSON, 0, len(cs.Changes)),
	}
	for _, c := range cs.Changes {
		cj := changeJSON{Kind: changeKind(c.Kind), Tag: c.Tag, Level: c.Level, OldLevel: c.OldLevel}
		switch c.Kind {
		case ltree.ChangeRemoved:
			cj.OldBegin, cj.OldEnd = c.Old.Begin, c.Old.End
		case ltree.ChangeAdded:
			cj.NewBegin, cj.NewEnd = c.New.Begin, c.New.End
		default:
			cj.OldBegin, cj.OldEnd = c.Old.Begin, c.Old.End
			cj.NewBegin, cj.NewEnd = c.New.Begin, c.New.End
		}
		out.Changes = append(out.Changes, cj)
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
