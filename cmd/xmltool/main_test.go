package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ltree-db/ltree"
)

func TestParseParams(t *testing.T) {
	cases := []struct {
		in   string
		f, s int
		err  bool
	}{
		{"8,2", 8, 2, false},
		{" 12 , 3 ", 12, 3, false},
		{"4", 0, 0, true},
		{"a,b", 0, 0, true},
		{"5,2", 0, 0, true}, // invalid per paper constraints
		{"8,2,1", 0, 0, true},
	}
	for _, c := range cases {
		p, err := parseParams(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseParams(%q) should fail", c.in)
			}
			continue
		}
		if err != nil || p.F != c.f || p.S != c.s {
			t.Errorf("parseParams(%q) = %+v, %v", c.in, p, err)
		}
	}
}

func TestResolvePath(t *testing.T) {
	st, err := ltree.OpenString(`<r><a><x/></a><b/></r>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	root, err := resolvePath(st, ".")
	if err != nil || root.Tag() != "r" {
		t.Fatalf("root: %v %v", root, err)
	}
	if n, err := resolvePath(st, ""); err != nil || n.Tag() != "r" {
		t.Fatalf("empty path: %v", err)
	}
	x, err := resolvePath(st, "0.0")
	if err != nil || x.Tag() != "x" {
		t.Fatalf("0.0: %v %v", x, err)
	}
	if _, err := resolvePath(st, "5"); err == nil {
		t.Fatal("out of range should fail")
	}
	if _, err := resolvePath(st, "a.b"); err == nil {
		t.Fatal("non-numeric should fail")
	}
}

func TestApplyEdits(t *testing.T) {
	st, err := ltree.OpenString(`<r><a/><b/></r>`, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(t.TempDir(), "edits.txt")
	content := `
# comment line

insert . 0 <new><kid/></new>
text 0 1 hello world
move 0.0 2 0
delete 1
`
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := applyEdits(st, script); err != nil {
		t.Fatal(err)
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
	// Expected end state: <r><new>hello world</new><b><kid/></b></r>
	// (insert new at 0, text into new, move kid under b(index shifts), delete a).
	if got := st.String(); got != `<r><new>hello world</new><b><kid/></b></r>` {
		t.Fatalf("end state: %s", got)
	}
	// Bad scripts report position.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("explode . 0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := applyEdits(st, bad); err == nil {
		t.Fatal("unknown command should fail")
	}
}
