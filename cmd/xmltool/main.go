// Command xmltool loads an XML document, labels it with an L-Tree, and
// lets you inspect labels, run path queries, and apply update scripts
// while watching the maintenance cost counters.
//
// Usage:
//
//	xmltool -in doc.xml -labels
//	xmltool -gen xmark:5 -query "//item/name"
//	xmltool -in doc.xml -edits script.txt -stats -out updated.xml
//
// Edit scripts are line-oriented:
//
//	insert <path> <idx> <xml fragment>   # e.g. insert 0.2 1 <note>hi</note>
//	text   <path> <idx> <text...>
//	delete <path>
//	move   <path> <target-path> <idx>
//
// where <path> is a dot-separated child-index path from the root ("" or
// "." = the root itself). -save/-load persist the exact label state
// (snapshot format; no relabeling on reload).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/workload"
)

func main() {
	in := flag.String("in", "", "input XML file (default: stdin unless -gen)")
	gen := flag.String("gen", "", "generate input instead: xmark:<scale> or random:<elements>")
	params := flag.String("params", "8,2", "L-Tree parameters f,s")
	queryExpr := flag.String("query", "", "path query to evaluate (e.g. //item/name)")
	labels := flag.Bool("labels", false, "print the element label table")
	edits := flag.String("edits", "", "edit script file to apply")
	showStats := flag.Bool("stats", false, "print maintenance counters at the end")
	out := flag.String("out", "", "write the resulting document to this file")
	save := flag.String("save", "", "write a label-preserving snapshot to this file")
	load := flag.String("load", "", "restore from a snapshot file instead of parsing XML")
	flag.Parse()

	p, err := parseParams(*params)
	if err != nil {
		fatal(err)
	}
	var st *ltree.Store
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		st, err = ltree.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else if st, err = open(*in, *gen, p); err != nil {
		fatal(err)
	}

	if *edits != "" {
		if err := applyEdits(st, *edits); err != nil {
			fatal(err)
		}
	}
	if *labels {
		printLabels(st)
	}
	if *queryExpr != "" {
		res, err := st.Query(*queryExpr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d matches\n", *queryExpr, len(res))
		for i, n := range res {
			lab, _ := st.Label(n)
			fmt.Printf("  %3d. <%s> label (%d,%d)\n", i+1, n.Tag(), lab.Begin, lab.End)
			if i == 24 && len(res) > 26 {
				fmt.Printf("  ... and %d more\n", len(res)-25)
				break
			}
		}
	}
	if *showStats {
		s := st.Stats()
		fmt.Printf("stats: %s\n", s.String())
		fmt.Printf("labels: %d bits/label, %d live tags\n", st.BitsPerLabel(), len(st.Elements("*")))
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := st.Write(f); err != nil {
			fatal(err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := st.Snapshot(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if !*labels && *queryExpr == "" && !*showStats && *out == "" && *save == "" {
		fmt.Println(st.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmltool:", err)
	os.Exit(1)
}

func parseParams(s string) (ltree.Params, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return ltree.Params{}, fmt.Errorf("bad -params %q, want f,s", s)
	}
	f, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	sv, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return ltree.Params{}, fmt.Errorf("bad -params %q", s)
	}
	p := ltree.Params{F: f, S: sv}
	return p, p.Validate()
}

func open(in, gen string, p ltree.Params) (*ltree.Store, error) {
	switch {
	case gen != "":
		kind, arg, _ := strings.Cut(gen, ":")
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -gen %q", gen)
		}
		switch kind {
		case "xmark":
			doc := workload.XMarkLite(n, 1)
			return ltree.OpenString(doc.String(), p)
		case "random":
			doc := workload.GenerateDoc(workload.DocConfig{Elements: n, MaxDepth: 10, MaxFanout: 8, TextProb: 0.3}, 1)
			return ltree.OpenString(doc.String(), p)
		default:
			return nil, fmt.Errorf("unknown generator %q", kind)
		}
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ltree.Open(f, p)
	default:
		return ltree.Open(os.Stdin, p)
	}
}

func printLabels(st *ltree.Store) {
	fmt.Printf("%-28s %12s %12s %6s\n", "element", "begin", "end", "level")
	for _, n := range st.Elements("*") {
		lab, err := st.Label(n)
		if err != nil {
			continue
		}
		fmt.Printf("%-28s %12d %12d %6d\n", strings.Repeat("  ", n.Level())+"<"+n.Tag()+">", lab.Begin, lab.End, n.Level())
	}
}

// resolvePath walks a dot-separated child-index path from the root.
func resolvePath(st *ltree.Store, path string) (*ltree.Elem, error) {
	cur := st.Root()
	path = strings.TrimSpace(path)
	if path == "" || path == "." {
		return cur, nil
	}
	for _, part := range strings.Split(path, ".") {
		i, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad path element %q", part)
		}
		next := cur.Child(i)
		if next == nil {
			return nil, fmt.Errorf("path %q: no child %d under <%s>", path, i, cur.Tag())
		}
		cur = next
	}
	return cur, nil
}

func applyEdits(st *ltree.Store, file string) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		cmdErr := func(err error) error { return fmt.Errorf("%s:%d: %w", file, line, err) }
		switch fields[0] {
		case "insert":
			if len(fields) < 4 {
				return cmdErr(errors.New("usage: insert <path> <idx> <xml>"))
			}
			target, err := resolvePath(st, fields[1])
			if err != nil {
				return cmdErr(err)
			}
			idx, err := strconv.Atoi(fields[2])
			if err != nil {
				return cmdErr(err)
			}
			frag := strings.Join(fields[3:], " ")
			if _, err := st.InsertXML(target, idx, frag); err != nil {
				return cmdErr(err)
			}
		case "text":
			if len(fields) < 4 {
				return cmdErr(errors.New("usage: text <path> <idx> <text>"))
			}
			target, err := resolvePath(st, fields[1])
			if err != nil {
				return cmdErr(err)
			}
			idx, err := strconv.Atoi(fields[2])
			if err != nil {
				return cmdErr(err)
			}
			if _, err := st.InsertText(target, idx, strings.Join(fields[3:], " ")); err != nil {
				return cmdErr(err)
			}
		case "delete":
			if len(fields) != 2 {
				return cmdErr(errors.New("usage: delete <path>"))
			}
			target, err := resolvePath(st, fields[1])
			if err != nil {
				return cmdErr(err)
			}
			if err := st.Delete(target); err != nil {
				return cmdErr(err)
			}
		case "move":
			if len(fields) != 4 {
				return cmdErr(errors.New("usage: move <path> <target-path> <idx>"))
			}
			src, err := resolvePath(st, fields[1])
			if err != nil {
				return cmdErr(err)
			}
			dst, err := resolvePath(st, fields[2])
			if err != nil {
				return cmdErr(err)
			}
			idx, err := strconv.Atoi(fields[3])
			if err != nil {
				return cmdErr(err)
			}
			if err := st.Move(src, dst, idx); err != nil {
				return cmdErr(err)
			}
		default:
			return cmdErr(fmt.Errorf("unknown command %q", fields[0]))
		}
	}
	return sc.Err()
}
