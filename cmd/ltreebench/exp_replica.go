package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/workload"
)

// expReplica measures what log shipping buys a read replica over the
// snapshot-restore alternative (the graviton-style versioned-snapshot
// route): a follower applies each committed batch's logical ops through
// the deterministic relabeling paths, so per commit it ships O(batch)
// bytes and applies in O(batch), while a snapshot replica ships and
// restores O(document) per refresh. Two phases over the same
// xmark-lite insertion stream:
//
//	paced   one commit at a time; freshness = time from the commit
//	        being durable on the leader to the follower acknowledging
//	        it (reads observe it). Baseline: SaveVersion + LoadVersion
//	        per refresh — its "freshness" is the restore cost alone,
//	        ignoring shipping, so the comparison favors the baseline.
//	burst   every commit back-to-back while the follower applies
//	        concurrently; reports the apply-lag profile (max observed
//	        lag in batches) and the drain throughput after the last
//	        commit.
//
// The verdicts pin the replication-correctness claim (follower ==
// leader, bit-identical, after acknowledgment) and the two structural
// wins: fresher-than-restore and O(batch) bytes shipped.
func expReplica(c config) {
	scale, commits, burst := 120, 200, 300
	if c.quick {
		scale, commits, burst = 15, 40, 80
	}
	if c.n > 0 {
		scale = c.n
	}
	x := workload.XMarkLite(scale, 11)
	src := x.String()
	fmt.Printf("xmark-lite scale %d: %d tokens, %d bytes serialized; %d paced + %d burst commits\n\n",
		scale, x.CountTokens(), len(src), commits, burst)

	dir, err := os.MkdirTemp("", "ltreebench-replica-*")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	leader, err := ltree.OpenString(src, ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w, err := storage.OpenWAL(dir+"/wal", storage.WALOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer w.Close()
	if err := leader.WithWAL(w); err != nil {
		fmt.Println("error:", err)
		return
	}
	f, err := ltree.OpenFollower(w)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer f.Close()

	// Snapshot-restore baseline replica: one full snapshot per refresh.
	snapBackend, err := ltree.NewFileBackend(dir + "/snap")
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	rng := rand.New(rand.NewSource(7))
	parent := leader.Elements("asia")[0]
	commit := func() error {
		return leader.Update(func(tx *ltree.Batch) error {
			_, err := tx.InsertXML(parent, rng.Intn(parent.NumChildren()+1),
				`<item><name>fresh</name></item>`)
			return err
		})
	}

	// ---- paced phase: per-commit freshness ----
	shipped0, _ := w.LiveLog()
	fresh := make([]time.Duration, 0, commits)
	saveCost := make([]time.Duration, 0, commits)
	restoreCost := make([]time.Duration, 0, commits)
	var snapBytes int64
	for i := 0; i < commits; i++ {
		if err := commit(); err != nil {
			fmt.Println("error:", err)
			return
		}
		t0 := time.Now()
		if err := f.WaitFor(w.Seq(), 30*time.Second); err != nil {
			fmt.Println("error:", err)
			return
		}
		fresh = append(fresh, time.Since(t0))

		t1 := time.Now()
		v, err := leader.SaveVersion(snapBackend)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		saveCost = append(saveCost, time.Since(t1))
		t2 := time.Now()
		if _, err := ltree.LoadVersion(snapBackend, v); err != nil {
			fmt.Println("error:", err)
			return
		}
		restoreCost = append(restoreCost, time.Since(t2))
		blob, err := snapBackend.Get(v)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		snapBytes = int64(len(blob))
		_ = snapBackend.Prune(v) // keep the baseline dir O(1)
	}
	shipped1, records1 := w.LiveLog()
	shippedPerCommit := float64(shipped1-shipped0) / float64(records1)

	tbl := stats.NewTable(os.Stdout, "replication path", "freshness µs (mean)", "p95 µs", "bytes/commit")
	tbl.Row("log-ship apply (follower)", us(mean(fresh)), us(p95(fresh)), shippedPerCommit)
	tbl.Row("snapshot restore (baseline)", us(mean(restoreCost)), us(p95(restoreCost)), float64(snapBytes))
	tbl.Flush()
	fmt.Printf("(baseline additionally costs the leader %v per refresh to write the snapshot;\n"+
		" the follower costs the leader nothing beyond the WAL append it already pays)\n\n", mean(saveCost).Round(time.Microsecond))

	// ---- burst phase: apply lag under sustained commits ----
	maxLag := uint64(0)
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		if err := commit(); err != nil {
			fmt.Println("error:", err)
			return
		}
		if lag := f.Stats().Lag; lag > maxLag {
			maxLag = lag
		}
	}
	commitDone := time.Since(t0)
	tDrain := time.Now()
	if err := f.WaitFor(w.Seq(), 60*time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	drain := time.Since(tDrain)
	st := f.Stats()
	fmt.Printf("burst: %d commits in %v (leader), max observed lag %d batches,\n"+
		"       drain after last commit %v, follower applied %d batches total\n\n",
		burst, commitDone.Round(time.Millisecond), maxLag, drain.Round(time.Microsecond), st.Batches)

	// ---- correctness + verdicts ----
	var live, replica bytes.Buffer
	if err := leader.Snapshot(&live); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := f.Snapshot(&replica); err != nil {
		fmt.Println("error:", err)
		return
	}
	identical := bytes.Equal(live.Bytes(), replica.Bytes()) && f.Check() == nil

	verdict(identical, "acknowledged follower is bit-identical to the leader (snapshot + invariants)")
	ratio := float64(mean(restoreCost)) / float64(mean(fresh))
	verdict(mean(fresh) < mean(restoreCost),
		fmt.Sprintf("follower freshness beats snapshot-restore refresh (%.1f× fresher)", ratio))
	verdict(shippedPerCommit < float64(snapBytes)/4,
		fmt.Sprintf("shipped bytes are O(batch), not O(document): %.0f B/commit vs %d B/snapshot (%.0f×)",
			shippedPerCommit, snapBytes, float64(snapBytes)/shippedPerCommit))
	verdict(st.Lag == 0 && st.Err == nil, "follower fully caught up with no replication error")
	fmt.Println("(the gap widens with document size: the snapshot baseline re-ships the whole")
	fmt.Println(" image per refresh, the follower ships one op record per commit.)")
}

// mean returns the arithmetic mean of a duration sample.
func mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}

// p95 returns the 95th-percentile of a duration sample.
func p95(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*95/100]
}

// us renders a duration as float microseconds for table cells.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
