package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expBlob measures what the blob storage tier (DESIGN.md §9) costs and
// buys, end to end, with the object store misbehaving the whole time —
// the fault-injecting wrapper drops, tears, and delays a slice of every
// operation, so every number below was earned through retries:
//
//	latency   identical commit streams into a local-only WAL and a
//	          blob-tiered WAL (async uploads + ReleaseLocal). The tier
//	          must stay off the commit path: tiered latency within 10%
//	          of local-only.
//	seed      a follower bootstraps from the blob store alone
//	          (checkpoint + segment tail), then tracks the leader's
//	          live tail; snapshot differential decides equality.
//	history   after checkpoints prune local history and ReleaseLocal
//	          frees sealed segments from local disk, every snapshot
//	          captured live must be reconstructed bit-identically by
//	          LoadAt — the bytes can only have come back through the
//	          blob tier.
func expBlob(c config) {
	scale, commits, rounds := 80, 200, 5
	if c.quick {
		scale, commits, rounds = 15, 60, 4
	}
	if c.n > 0 {
		scale = c.n
	}
	x := workload.XMarkLite(scale, 11)
	src := x.String()
	perRound := commits / rounds
	fmt.Printf("xmark-lite scale %d: %d tokens, %d bytes serialized; %d commits in %d checkpoint rounds\n\n",
		scale, x.CountTokens(), len(src), perRound*rounds, rounds)

	dir, err := os.MkdirTemp("", "ltreebench-blob-*")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	// Two leaders over the same document: one plain WAL, one with the
	// tier attached over a deterministically faulty in-memory store.
	// Same small segment size so both pay the same rotation cadence.
	open := func(sub string) (*ltree.Store, ltree.WALBackend, error) {
		w, err := ltree.NewWALBackend(dir+"/"+sub, ltree.WALOptions{SegmentBytes: 4 << 10})
		if err != nil {
			return nil, nil, err
		}
		st, err := ltree.OpenString(src, ltree.DefaultParams)
		if err != nil {
			return nil, nil, err
		}
		if err := st.WithWAL(w); err != nil {
			return nil, nil, err
		}
		return st, w, nil
	}
	local, _, err := open("local")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tiered, tw, err := open("tiered")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	faulty := ltree.NewBlobFaults(ltree.NewBlobMemory(), ltree.BlobFaultOptions{
		Seed: 42, ErrorRate: 0.15, PartialPuts: 0.15, TornReads: 0.15,
		Latency: 200 * time.Microsecond,
	})
	tier, err := ltree.AttachBlobTier(tw, faulty, ltree.BlobTierOptions{
		Prefix: "bench", ReleaseLocal: true,
		RetryBase: 200 * time.Microsecond, RetryCap: 5 * time.Millisecond,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	commitInto := func(st *ltree.Store, rng *rand.Rand) error {
		parent := st.Elements("asia")[0]
		return st.Update(func(tx *ltree.Batch) error {
			_, err := tx.InsertXML(parent, rng.Intn(parent.NumChildren()+1),
				`<item><name>fresh</name></item>`)
			return err
		})
	}

	// ---- latency phase: identical streams, per-commit wall time ----
	// Same rng seed on both sides keeps the op streams identical; a short
	// untimed warmup absorbs first-touch costs on both paths.
	rngL, rngT := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if err := commitInto(local, rngL); err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := commitInto(tiered, rngT); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	latLocal := make([]time.Duration, 0, commits)
	latTier := make([]time.Duration, 0, commits)
	want := map[uint64][]byte{} // tiered seq -> live snapshot bytes
	var seqs []uint64
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			t0 := time.Now()
			if err := commitInto(local, rngL); err != nil {
				fmt.Println("error:", err)
				return
			}
			latLocal = append(latLocal, time.Since(t0))
			t1 := time.Now()
			if err := commitInto(tiered, rngT); err != nil {
				fmt.Println("error:", err)
				return
			}
			latTier = append(latTier, time.Since(t1))
		}
		// End of round: pin the live image at this seq for the history
		// phase, then checkpoint so the tier can release local segments.
		ws, ok := tiered.WALStats()
		if !ok {
			fmt.Println("error: tiered store reports no WAL stats")
			return
		}
		var snap bytes.Buffer
		if err := tiered.Snapshot(&snap); err != nil {
			fmt.Println("error:", err)
			return
		}
		want[ws.Seq] = snap.Bytes()
		seqs = append(seqs, ws.Seq)
		if _, err := tiered.Checkpoint(); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	overhead := 100 * (float64(mean(latTier))/float64(mean(latLocal)) - 1)
	tbl := stats.NewTable(os.Stdout, "commit path", "mean µs", "p95 µs")
	tbl.Row("local-only WAL", us(mean(latLocal)), us(p95(latLocal)))
	tbl.Row("WAL + async blob tier (faulty store)", us(mean(latTier)), us(p95(latTier)))
	tbl.Flush()
	fmt.Printf("(tier overhead on the commit path: %+.1f%% — uploads run behind a kick channel,\n"+
		" never under the commit lock)\n\n", overhead)
	recordMetric("commit_mean_local_us", us(mean(latLocal)), "us")
	recordMetric("commit_mean_blob_us", us(mean(latTier)), "us")
	recordMetric("commit_overhead_pct", overhead, "%")

	// ---- seed phase: follower bootstraps from the blob store alone ----
	if err := tier.Barrier(120 * time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	ws, _ := tiered.WALStats()
	t0 := time.Now()
	f, err := ltree.OpenFollowerSeeded(tw, faulty, "bench")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer f.Close()
	if err := f.WaitFor(ws.Seq, 60*time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	seedTime := time.Since(t0)
	var leaderSnap, followerSnap bytes.Buffer
	if err := tiered.Snapshot(&leaderSnap); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := f.Snapshot(&followerSnap); err != nil {
		fmt.Println("error:", err)
		return
	}
	seedIdentical := bytes.Equal(leaderSnap.Bytes(), followerSnap.Bytes()) && f.Check() == nil
	// The live tail keeps flowing after the seeded bootstrap.
	for i := 0; i < 5; i++ {
		if err := commitInto(tiered, rngT); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	ws, _ = tiered.WALStats()
	liveOK := f.WaitFor(ws.Seq, 60*time.Second) == nil
	fmt.Printf("blob-seeded follower: bootstrap+catch-up in %v at seq %d (leader shipped only the live tail)\n\n",
		seedTime.Round(time.Microsecond), f.Stats().AppliedSeq)
	recordMetric("seed_catchup_us", us(seedTime), "us")

	// ---- history phase: reconstruct released history through the tier ----
	if _, err := tiered.Checkpoint(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := tier.Barrier(120 * time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	ws, _ = tiered.WALStats()
	if err := tw.Prune(ws.CheckpointSeq); err != nil {
		fmt.Println("error:", err)
		return
	}
	reconstructed := 0
	for _, seq := range seqs {
		at, err := ltree.LoadAt(tw, seq)
		if err != nil {
			fmt.Printf("LoadAt(%d): %v\n", seq, err)
			continue
		}
		var snap bytes.Buffer
		if err := at.Snapshot(&snap); err != nil {
			fmt.Printf("LoadAt(%d) snapshot: %v\n", seq, err)
			continue
		}
		if bytes.Equal(snap.Bytes(), want[seq]) {
			reconstructed++
		}
	}
	// Read the tier counters only now: the LoadAt loop above is what
	// drives the fetch-back traffic this table is about.
	ws, _ = tiered.WALStats()
	ts := ws.Tier
	fmt.Printf("history: %d/%d pruned-and-released snapshots reconstructed bit-identically via LoadAt\n",
		reconstructed, len(seqs))
	fmt.Printf("tier: durable seq %d (lag %d), %d segments + %d checkpoints uploaded (%d B),\n"+
		"      %d upload retries, %d local segment files released, %d fetches (%d B) served back\n\n",
		ts.DurableSeq, ts.UploadLag, ts.UploadedSegments, ts.UploadedCheckpoints, ts.BytesUploaded,
		ts.UploadRetries, ts.LocalReleased, ts.Fetches, ts.FetchBytes)
	recordMetric("blob_durable_seq", float64(ts.DurableSeq), "seq")
	recordMetric("blob_uploaded_bytes", float64(ts.BytesUploaded), "B")
	recordMetric("blob_upload_retries", float64(ts.UploadRetries), "retries")
	recordMetric("blob_local_released", float64(ts.LocalReleased), "segments")
	recordMetric("blob_fetches", float64(ts.Fetches), "fetches")

	// ---- verdicts ----
	verdict(float64(mean(latTier)) <= 1.10*float64(mean(latLocal)),
		fmt.Sprintf("async blob upload stays off the commit path: tiered latency within 10%% of local-only (%+.1f%%)", overhead))
	verdict(seedIdentical && liveOK,
		"blob-seeded follower reaches the leader seq bit-identically and keeps tracking the live tail")
	verdict(ts.LocalReleased > 0 && reconstructed == len(seqs),
		fmt.Sprintf("all %d historical snapshots reconstruct bit-identically via blob fetch after local release", len(seqs)))
	verdict(ts.UploadRetries > 0 && ts.UploadLag == 0,
		fmt.Sprintf("tier converged through injected faults (%d upload retries, lag 0)", ts.UploadRetries))
}
