package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/reltab"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/virtual"
	"github.com/ltree-db/ltree/internal/workload"
)

// expVirtual reproduces §4.2: the virtual L-Tree emits identical labels
// while storing only the label set; the price is range counting per
// insertion, the gain is memory.
func expVirtual(c config) {
	n := 20_000
	if c.quick {
		n = 5_000
	}
	if c.n > 0 {
		n = c.n
	}
	p := core.Params{F: 8, S: 2}
	mt, err := core.New(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	vt, err := virtual.New(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := mt.Load(n); err != nil {
		fmt.Println("error:", err)
		return
	}
	if _, err := vt.Load(n); err != nil {
		fmt.Println("error:", err)
		return
	}
	rng := rand.New(rand.NewSource(9))
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = rng.Intn(n + i)
	}

	start := time.Now()
	for _, at := range ranks {
		if _, err := mt.InsertAfter(mt.LeafAt(at)); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	matTime := time.Since(start)

	start = time.Now()
	for _, at := range ranks {
		x, _ := vt.LabelAt(at)
		if _, err := vt.InsertAfter(x); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	virTime := time.Since(start)

	identical := true
	mNums, vNums := mt.Nums(), vt.Labels()
	if len(mNums) != len(vNums) {
		identical = false
	} else {
		for i := range mNums {
			if mNums[i] != vNums[i] {
				identical = false
				break
			}
		}
	}
	ms, vs := mt.Stats(), vt.Stats()
	// Materialized storage: every node is a ~96-byte struct (pointers,
	// counters, payload slot) plus child-slice headers.
	exact := mt.NodeCount() * 96
	virBytes := vt.MemoryFootprint()

	tbl := stats.NewTable(os.Stdout, "metric", "materialized", "virtual")
	tbl.Row("time per insert (µs)", float64(matTime.Microseconds())/float64(n), float64(virTime.Microseconds())/float64(n))
	tbl.Row("relabeled leaves", ms.RelabeledLeaves, vs.RelabeledLeaves)
	tbl.Row("splits", ms.Splits, vs.Splits)
	tbl.Row("est. resident bytes", exact, virBytes)
	tbl.Row("bytes per label", float64(exact)/float64(mt.Len()), float64(virBytes)/float64(vt.Len()))
	tbl.Flush()
	fmt.Println()
	verdict(identical, "virtual and materialized trees emit bit-identical labels (§4.2)")
	verdict(ms.RelabeledLeaves == vs.RelabeledLeaves, "and charge identical relabeling work")
	verdict(virBytes < exact, "the virtual variant stores less (labels only) — the paper's storage trade-off")
}

// expQuery reproduces the §1 claim: with order labels, // queries run as
// one self-join, as cheap as child joins, while the edge-table approach
// needs one join pass per level.
func expQuery(c config) {
	scale := 40
	if c.quick {
		scale = 10
	}
	x := workload.XMarkLite(scale, 3)
	d, err := document.Load(x, core.Params{F: 8, S: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tblr, err := reltab.Build(d)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("xmark-lite scale %d: %d elements, %d tokens\n\n", scale, tblr.Len(), x.CountTokens())

	queries := []struct{ anc, desc string }{
		{"site", "name"},
		{"regions", "para"},
		{"open_auctions", "increase"},
		{"people", "emailaddress"},
		{"site", "*"},
	}
	tbl := stats.NewTable(os.Stdout, "query", "results", "label join µs", "passes", "edge join µs", "edge passes", "nav µs")
	onePass := true
	edgeSlower := 0
	for _, q := range queries {
		start := time.Now()
		pairs, st := tblr.AncestorDescendantJoin(q.anc, q.desc)
		labelT := time.Since(start)

		start = time.Now()
		edgePairs, edgeSt := tblr.DescendantsViaEdgeJoins(q.anc, q.desc)
		edgeT := time.Since(start)

		expr := q.anc + "//" + q.desc
		pq, err := query.Parse("//" + expr)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		start = time.Now()
		navRes := query.Nav(d, pq)
		navT := time.Since(start)
		_ = navRes

		tbl.Row(expr, len(pairs), labelT.Microseconds(), st.JoinPasses, edgeT.Microseconds(), edgeSt.JoinPasses, navT.Microseconds())
		if st.JoinPasses != 1 {
			onePass = false
		}
		if edgeSt.JoinPasses > st.JoinPasses {
			edgeSlower++
		}
		if len(pairs) != len(edgePairs) {
			verdict(false, "edge and label plans disagree on "+expr)
			return
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(onePass, "every // query is answered with exactly one label self-join (§1)")
	verdict(edgeSlower == len(queries), "the edge-table plan needs one join pass per level — the cost labels remove")
}

// expProps validates Propositions 2 and 3 statistically: structural
// invariants across parameters and hostile insertion patterns.
func expProps(c config) {
	n := 20_000
	if c.quick {
		n = 5_000
	}
	tbl := stats.NewTable(os.Stdout, "f", "s", "dist", "max fanout (≤ f−1)", "max splits/insert", "height", "check")
	ok := true
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 9, S: 3}, {F: 16, S: 4}} {
		for _, dist := range []workload.Dist{workload.Uniform, workload.Front, workload.Hotspot} {
			tr, err := core.New(p)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if _, err := tr.Load(16); err != nil {
				fmt.Println("error:", err)
				return
			}
			pos := workload.NewPositions(dist, 21)
			maxSplits := uint64(0)
			prevSplits := uint64(0)
			for i := 0; i < n; i++ {
				at := pos.Next(tr.Len())
				if at == 0 {
					_, err = tr.InsertFirst()
				} else {
					_, err = tr.InsertAfter(tr.LeafAt(at - 1))
				}
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				st := tr.Stats()
				if d := st.Splits - prevSplits; d > maxSplits {
					maxSplits = d
				}
				prevSplits = st.Splits
			}
			maxFan := maxFanout(tr)
			errCheck := tr.Check()
			checkStr := "ok"
			if errCheck != nil {
				checkStr = errCheck.Error()
				ok = false
			}
			if maxFan > p.F-1 || maxSplits > 1 {
				ok = false
			}
			tbl.Row(p.F, p.S, dist.String(), maxFan, maxSplits, tr.Height(), checkStr)
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(ok, "fanout ≤ f−1, at most one split per insert (Prop. 3), all invariants hold")
}

// maxFanout scans every node for the widest fanout.
func maxFanout(tr *core.Tree) int {
	max := 0
	tr.WalkNodes(func(n *core.Node) bool {
		if n.Fanout() > max {
			max = n.Fanout()
		}
		return true
	})
	return max
}

// expDelete reproduces §2.3: deletions mark tombstones and relabel
// nothing; compaction (our extension) restores density on demand.
func expDelete(c config) {
	n := 5_000
	if c.quick {
		n = 1_000
	}
	x := workload.GenerateDoc(workload.DocConfig{Elements: n, MaxDepth: 10, MaxFanout: 8, TextProb: 0.2}, 5)
	d, err := document.Load(x, core.Params{F: 8, S: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	before := d.Stats().Relabelings()
	slots := d.Tree().Len()
	// Delete every third subtree under the root's children, depth-first.
	victims := 0
	for _, el := range d.Elements("*") {
		if el == d.X.Root || el.Parent() == nil {
			continue
		}
		if victims%3 == 0 {
			if err := d.DeleteSubtree(el); err == nil {
				victims++
				continue
			}
		}
		victims++
	}
	relabels := d.Stats().Relabelings() - before
	liveAfter := d.Tree().Live()
	if err := d.CompactLabels(); err != nil {
		fmt.Println("error:", err)
		return
	}
	tbl := stats.NewTable(os.Stdout, "metric", "value")
	tbl.Row("label slots before", slots)
	tbl.Row("live labels after deletions", liveAfter)
	tbl.Row("relabels caused by deletions", relabels)
	tbl.Row("slots after compaction", d.Tree().Len())
	tbl.Row("height after compaction", d.Tree().Height())
	tbl.Flush()
	fmt.Println()
	verdict(relabels == 0, "deletions never relabel (paper §2.3: tombstones only)")
	verdict(d.Tree().Len() == liveAfter, "compaction reclaims every tombstoned slot (extension)")
	verdict(d.Check() == nil, "document remains fully consistent")
}
