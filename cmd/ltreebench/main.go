// Command ltreebench regenerates every figure and analytic table of the
// paper as a measured experiment (the E1–E13 index of DESIGN.md §4).
//
// Usage:
//
//	ltreebench -exp all            # run everything (default)
//	ltreebench -exp cost -n 200000 # one experiment, custom size
//	ltreebench -quick              # reduced sizes for smoke runs
//
// Output is plain text tables; EXPERIMENTS.md archives a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

// experiment is one reproducible unit: id, paper item, and a runner.
type experiment struct {
	id    string
	paper string
	run   func(c config)
}

// config carries the global knobs into experiments.
type config struct {
	quick bool
	n     int // 0 = experiment default
}

var experiments = []experiment{
	{"fig1", "Figure 1: begin/end labeling and containment queries", expFig1},
	{"fig2", "Figure 2: L-Tree bulk load and insertions (f=4, s=2)", expFig2},
	{"cost", "§3.1: amortized update cost vs n, measured vs bound", expCost},
	{"bits", "§3.1: label width vs n, measured vs bound", expBits},
	{"baselines", "§1/§5: L-Tree vs sequential, gap, bisection", expBaselines},
	{"tune", "§3.2 model 1: (f,s) sweep, analytic vs empirical optimum", expTune},
	{"budget", "§3.2 model 2: optimal (f,s) under a bit budget", expBudget},
	{"mix", "§3.2 model 3: combined query+update optimization", expMix},
	{"bulk", "§4.1: amortized cost vs subtree (run) size", expBulk},
	{"virtual", "§4.2: virtual vs materialized L-Tree", expVirtual},
	{"query", "§1: // queries — label self-join vs navigation vs edge joins", expQuery},
	{"props", "Propositions 2–3: structural invariants, measured", expProps},
	{"delete", "§2.3: deletions relabel nothing; compaction", expDelete},
	{"disk", "§3.1 cost unit: simulated disk accesses under an LRU pool", expDisk},
	{"radix", "ablation: tight radix f−1 vs the paper's printed f+1", expRadix},
	{"concurrent", "engine: concurrent reads over the COW index vs the exclusive-lock path", expConcurrent},
	{"wal", "engine: commit latency — snapshot-per-save vs WAL append vs batched WAL", expWal},
	{"chunk", "engine: chunked COW posting lists — single-op patch cost vs tag fan-in, flat baseline", expChunk},
	{"pipeline", "engine: lazy cursor pipeline — deep-path intermediate memory + first-result latency vs materialized join", expPipeline},
	{"replica", "engine: log-shipping follower — apply lag + freshness vs snapshot-restore baseline", expReplica},
	{"pushdown", "engine: zig-zag join + chunk-level predicate pushdown — selectivity × depth vs the linear pipeline", expPushdown},
	{"serve", "engine: follower fleet over the wire — aggregate queries/sec vs single store, per-follower fan-out cost", expServe},
	{"forest", "engine: sharded forest — parallel commit pipelines, parallel recovery, k-way merged drain tax", expForest},
	{"blob", "engine: blob storage tier — async upload commit tax, blob-seeded bootstrap, history beyond released local disk", expBlob},
	{"diff", "engine: hash-pruned version diff — O(changed chunks) walk vs full-fingerprint oracle on a 1%-touched document", expDiff},
}

func main() {
	expFlag := flag.String("exp", "all", "experiment id (all, "+ids()+")")
	quick := flag.Bool("quick", false, "reduced sizes for a fast smoke run")
	n := flag.Int("n", 0, "override the main size parameter (0 = default)")
	requireCPUs := flag.Int("requirecpus", 0, "exit nonzero unless runtime.NumCPU() >= this (CI multicore gate)")
	jsonPath := flag.String("json", "", "also write metrics and verdicts as JSON to this path")
	strict := flag.Bool("strict", false, "exit nonzero if any verdict failed (CI assertion mode)")
	flag.Parse()

	c := config{quick: *quick, n: *n}
	// Every table is CPU-sensitive; print the parallelism up front so no
	// archived run circulates without its hardware context again.
	fmt.Printf("runtime: GOMAXPROCS=%d NumCPU=%d\n\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	if *requireCPUs > 0 && runtime.NumCPU() < *requireCPUs {
		// The multicore CI lane runs with -requirecpus 2: a table taken on
		// fewer cores than required must fail the job, not get archived as
		// if it measured parallelism.
		fmt.Fprintf(os.Stderr, "requirecpus: NumCPU=%d < required %d — refusing to run\n",
			runtime.NumCPU(), *requireCPUs)
		os.Exit(3)
	}
	want := strings.Split(*expFlag, ",")
	ran := 0
	for _, e := range experiments {
		if *expFlag != "all" && !contains(want, e.id) {
			continue
		}
		fmt.Printf("══ %s — %s\n\n", strings.ToUpper(e.id), e.paper)
		benchCurrentExp = e.id
		e.run(c)
		benchCurrentExp = ""
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n", *expFlag, ids())
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, c.quick); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("json report: %s\n", *jsonPath)
	}
	if *strict && failedVerdicts > 0 {
		fmt.Fprintf(os.Stderr, "strict: %d verdict(s) failed\n", failedVerdicts)
		os.Exit(4)
	}
}

func ids() string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.id
	}
	return strings.Join(out, ", ")
}

func contains(hay []string, needle string) bool {
	for _, h := range hay {
		if strings.TrimSpace(h) == needle {
			return true
		}
	}
	return false
}

// failedVerdicts counts FAIL verdicts across the run; -strict turns a
// nonzero count into a nonzero exit for CI assertion lanes.
var failedVerdicts int

// verdict prints a PASS/FAIL reproduction verdict for a claim and
// mirrors it into the JSON report.
func verdict(ok bool, claim string) {
	mark := "PASS"
	if !ok {
		mark = "FAIL"
		failedVerdicts++
	}
	recordVerdict(ok, claim)
	fmt.Printf("[%s] %s\n", mark, claim)
}

// sizes returns the experiment's n series honoring -quick and -n.
func (c config) sizes(def []int) []int {
	if c.n > 0 {
		return []int{c.n}
	}
	if c.quick {
		out := []int{}
		for _, n := range def {
			if n <= def[0]*10 {
				out = append(out, n)
			}
		}
		if len(out) == 0 {
			out = def[:1]
		}
		return out
	}
	return def
}

// fmtU64s renders a label slice compactly.
func fmtU64s(v []uint64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// sortedKeys returns map keys sorted (for deterministic output).
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
