package main

import "testing"

func TestConfigSizes(t *testing.T) {
	def := []int{1000, 10000, 100000}
	if got := (config{}).sizes(def); len(got) != 3 {
		t.Fatalf("default sizes = %v", got)
	}
	if got := (config{quick: true}).sizes(def); len(got) != 2 || got[1] != 10000 {
		t.Fatalf("quick sizes = %v", got)
	}
	if got := (config{n: 42}).sizes(def); len(got) != 1 || got[0] != 42 {
		t.Fatalf("override sizes = %v", got)
	}
}

func TestHelpers(t *testing.T) {
	if !contains([]string{"a", " b"}, "b") {
		t.Fatal("contains should trim")
	}
	if contains([]string{"a"}, "z") {
		t.Fatal("contains false positive")
	}
	if got := fmtU64s([]uint64{1, 2, 3}); got != "[1 2 3]" {
		t.Fatalf("fmtU64s = %q", got)
	}
	if got := fmtU64s(nil); got != "[]" {
		t.Fatalf("fmtU64s(nil) = %q", got)
	}
	keys := sortedKeys(map[string]int{"b": 1, "a": 2})
	if len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("sortedKeys = %v", keys)
	}
	if ids() == "" {
		t.Fatal("ids empty")
	}
}

// TestEveryExperimentRuns smoke-runs each experiment at tiny size; any
// panic or FAIL verdict in the core golden experiments is a regression.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is not short")
	}
	c := config{quick: true, n: 0}
	for _, e := range experiments {
		// The heavyweight sweeps get an even smaller n.
		ec := c
		switch e.id {
		case "cost", "bits", "tune", "budget", "virtual", "props", "radix":
			ec.n = 2000
		case "baselines", "disk":
			ec.n = 400
		}
		t.Run(e.id, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("experiment %s panicked: %v", e.id, r)
				}
			}()
			e.run(ec)
		})
	}
}
