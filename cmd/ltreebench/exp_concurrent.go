package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// expConcurrent measures the engine claim behind the read/write split:
// with a writer committing updates at a fixed rate, queries served from
// the published copy-on-write index proceed in parallel, whereas the
// seed's exclusive-lock path (every query takes the write lock and
// rebuilds the tag index after any update) pays an O(n) rebuild per
// committed write and serializes all readers behind it. Both paths run
// the same throttled mixed workload; the table reports completed queries
// per second. The parallel-read win needs cores to show up in wall-clock
// numbers — the printed CPU count qualifies the measurement.
func expConcurrent(c config) {
	scale := 60
	window := 150 * time.Millisecond
	writeEvery := 300 * time.Microsecond
	if c.quick {
		scale = 8
		window = 40 * time.Millisecond
	}
	x := workload.XMarkLite(scale, 11)
	src := x.String()

	readerCounts := []int{1, 2, 4, 8}
	if c.quick {
		readerCounts = []int{1, 4}
	}
	for _, q := range []struct{ label, expr string }{
		{"hot scan  //item/name", "//item/name"},
		{"point     /site/regions/asia", "/site/regions/asia"},
	} {
		fmt.Printf("%s — writer committing every %v, %v per cell\n", q.label, writeEvery, window)
		fmt.Printf("%-8s %14s %14s %10s\n", "readers", "exclusive q/s", "cow-index q/s", "speedup")
		for _, readers := range readerCounts {
			legacy := runExclusive(src, q.expr, readers, window, writeEvery)
			engine := runEngine(src, q.expr, readers, window, writeEvery)
			fmt.Printf("%-8d %14.0f %14.0f %9.2fx\n", readers,
				float64(legacy)/window.Seconds(), float64(engine)/window.Seconds(),
				float64(engine)/float64(legacy))
		}
		fmt.Println()
	}

	// The verdicts stay correctness-based (timing varies with load): the
	// engine's incremental index must remain exact under the mixed
	// workload, which runEngine checks before returning.
	st, err := ltree.OpenString(src, ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	before := st.IndexVersion()
	if _, err := st.InsertElement(st.Root(), 0, "probe"); err != nil {
		fmt.Println("error:", err)
		return
	}
	verdict(st.IndexVersion() == before+1, "each write batch publishes exactly one new index version")
	verdict(st.Check() == nil, "published index stays exact (no rebuild) under updates")
	verdict(runtime.NumCPU() >= 1, fmt.Sprintf("measured on %d CPUs", runtime.NumCPU()))
}

// runEngine drives the Store: readers query the published index in
// parallel while one writer inserts and deletes. Returns completed
// queries.
func runEngine(src, expr string, readers int, window, writeEvery time.Duration) int64 {
	st, err := ltree.OpenString(src, ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return 1
	}
	var (
		done    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	regions := st.Elements("asia")
	wg.Add(1)
	go func() { // writer: population-stationary insert/delete of items
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !done.Load() {
			if rng.Intn(2) == 0 {
				_, _ = st.InsertXML(regions[0], 0, `<item><name>fresh</name></item>`)
			} else {
				items := st.Elements("item")
				if len(items) == 0 {
					continue
				}
				_ = st.Delete(items[rng.Intn(len(items))])
			}
			time.Sleep(writeEvery)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				if _, err := st.Query(expr); err != nil {
					return
				}
				queries.Add(1)
			}
		}()
	}
	time.Sleep(window)
	done.Store(true)
	wg.Wait()
	if err := st.Check(); err != nil {
		fmt.Println("index drifted:", err)
	}
	if q := queries.Load(); q > 0 {
		return q
	}
	return 1
}

// runExclusive reproduces the seed's locking discipline on the same
// document layer: one mutex, every query takes it exclusively, and any
// update marks the tag index dirty so the next query rebuilds it in
// full.
func runExclusive(src, expr string, readers int, window, writeEvery time.Duration) int64 {
	d, err := document.Parse(strings.NewReader(src), ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return 1
	}
	path, err := query.Parse(expr)
	if err != nil {
		fmt.Println("error:", err)
		return 1
	}
	var (
		mu      sync.Mutex
		idx     document.TagIndex
		dirty   = true
		done    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	region := d.Elements("asia")[0]
	wg.Add(1)
	go func() { // writer: same population-stationary workload as runEngine
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !done.Load() {
			mu.Lock()
			if rng.Intn(2) == 0 {
				sub := xmldom.NewElement("item")
				name := xmldom.NewElement("name")
				_ = name.AppendChild(xmldom.NewText("fresh"))
				_ = sub.AppendChild(name)
				if err := d.InsertSubtree(region, 0, sub); err == nil {
					dirty = true
				}
			} else if items := d.Elements("item"); len(items) > 0 {
				if err := d.DeleteSubtree(items[rng.Intn(len(items))]); err == nil {
					dirty = true
				}
			}
			mu.Unlock()
			time.Sleep(writeEvery)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				mu.Lock() // the seed: exclusive, because the rebuild may run
				if dirty {
					idx = d.BuildTagIndex()
					dirty = false
				}
				query.Join(d, idx, path)
				mu.Unlock()
				queries.Add(1)
			}
		}()
	}
	time.Sleep(window)
	done.Store(true)
	wg.Wait()
	if q := queries.Load(); q > 0 {
		return q
	}
	return 1
}
