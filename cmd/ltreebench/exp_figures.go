package main

import (
	"fmt"
	"os"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/labeling"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// expFig1 reproduces Figure 1: the book/chapter/title document under the
// static begin/end numbering (the sequential scheme yields exactly the
// figure's labels) and the containment answer to "book//title".
func expFig1(config) {
	// Tag order: book chapter title /title /chapter title /title /book.
	seq := labeling.NewSequential()
	slots, err := seq.Load(8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	num := func(i int) uint64 {
		b := seq.Label(slots[i])
		var v uint64
		for _, x := range b {
			v = v<<8 | uint64(x)
		}
		return v
	}
	tbl := stats.NewTable(os.Stdout, "element", "paper label", "measured")
	rows := []struct {
		name  string
		paper string
		b, e  int
	}{
		{"book", "(0,7)", 0, 7},
		{"chapter", "(1,4)", 1, 4},
		{"title[1]", "(2,3)", 2, 3},
		{"title[2]", "(5,6)", 5, 6},
	}
	ok := true
	for _, r := range rows {
		got := fmt.Sprintf("(%d,%d)", num(r.b), num(r.e))
		tbl.Row(r.name, r.paper, got)
		if got != r.paper {
			ok = false
		}
	}
	tbl.Flush()
	verdict(ok, "static depth-first numbering reproduces Figure 1 exactly")

	// The same document under an L-Tree answers book//title by interval
	// containment with different (but order-isomorphic) labels.
	x, err := xmldom.ParseString(`<book><chapter><title/></chapter><title/></book>`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d, err := document.Load(x, core.Params{F: 4, S: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	idx := d.BuildTagIndex()
	p, _ := query.Parse("book//title")
	res := query.Join(d, idx, p)
	verdict(len(res) == 2, `"book//title" answered purely by label containment (2 matches)`)
}

// expFig2 replays the paper's Figure 2 worked example step by step.
func expFig2(config) {
	tr, err := core.New(core.Params{F: 4, S: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	leaves, err := tr.Load(8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stageA := tr.Nums()
	fmt.Printf("(a) bulk load 8 tags:  %s  (paper: [0 1 3 4 9 10 12 13])\n", fmtU64s(stageA))
	okA := fmt.Sprint(stageA) == fmt.Sprint([]uint64{0, 1, 3, 4, 9, 10, 12, 13})

	c := leaves[2] // the begin tag "C"
	d, err := tr.InsertBefore(c)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stageC := tr.Nums()
	fmt.Printf("(c) insert D before C: %s  (paper: D=3 C=4 /C=5, no split)\n", fmtU64s(stageC))
	okC := d.Num() == 3 && c.Num() == 4 && tr.Stats().Splits == 0

	if _, err = tr.InsertAfter(d); err != nil {
		fmt.Println("error:", err)
		return
	}
	stageD := tr.Nums()
	fmt.Printf("(d) insert /D after D: %s  (paper: split -> D(3,4) C(6,7))\n", fmtU64s(stageD))
	okD := fmt.Sprint(stageD) == fmt.Sprint([]uint64{0, 1, 3, 4, 6, 7, 9, 10, 12, 13}) &&
		tr.Stats().Splits == 1

	verdict(okA, "Figure 2(a): bulk-load labels match the paper digit for digit")
	verdict(okC, "Figure 2(c): sibling renumbering without split")
	verdict(okD, "Figure 2(d): l=lmax split into s complete r-ary trees")
}
