package main

import (
	"fmt"
	"os"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expRadix is the radix ablation: the paper's printed formulas space
// labels with radix f+1, while Figure 2 (and our fanout proof, DESIGN.md
// §2.2) show f−1 suffices. The ablation runs identical insertion streams
// under both radices and shows that maintenance work is bit-identical
// while the wide radix wastes label bits — i.e. the tight radix strictly
// dominates.
func expRadix(c config) {
	n := 20_000
	if c.quick {
		n = 5_000
	}
	if c.n > 0 {
		n = c.n
	}
	tbl := stats.NewTable(os.Stdout, "f", "s", "radix", "relabels", "splits", "height", "bits/label")
	identical := true
	widerBits := true
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 16, S: 4}} {
		var rel [2]uint64
		var splits [2]uint64
		var bits [2]int
		for i, wide := range []bool{false, true} {
			pp := p
			pp.WideRadix = wide
			tr, err := core.New(pp)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			if _, err := tr.Load(n); err != nil {
				fmt.Println("error:", err)
				return
			}
			pos := workload.NewPositions(workload.Uniform, 23)
			for k := 0; k < n; k++ {
				at := pos.Next(tr.Len())
				if at == 0 {
					_, err = tr.InsertFirst()
				} else {
					_, err = tr.InsertAfter(tr.LeafAt(at - 1))
				}
				if err != nil {
					fmt.Println("error:", err)
					return
				}
			}
			st := tr.Stats()
			rel[i], splits[i], bits[i] = st.RelabeledLeaves, st.Splits, tr.BitsPerLabel()
			tbl.Row(p.F, p.S, pp.Radix(), rel[i], splits[i], tr.Height(), bits[i])
		}
		if rel[0] != rel[1] || splits[0] != splits[1] {
			identical = false
		}
		if bits[1] <= bits[0] {
			widerBits = false
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(identical, "maintenance work is radix-independent (identical relabels and splits)")
	verdict(widerBits, "the paper's printed f+1 radix only costs label bits — f−1 strictly dominates")
}
