package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expDiff measures what the hash-pruned version diff buys over the only
// alternative a content-addressed index replaces: fingerprinting both
// versions in full. The workload touches ~1% of an xmark-lite document
// across a run of batched commits; DiffVersions then walks only the
// chunks the two versions do not share, while the full-fingerprint
// oracle scans every entry of both versions and takes a multiset
// difference.
//
// Chunk digests are maintained incrementally on a WAL-attached store
// (every commit stamps the root hash); this store is detached, so one
// warm-up diff pays that amortized hashing and the table reports both
// the cold first diff and the warm steady state. The verdicts pin the
// E22 acceptance criteria: warm diff ≥10× faster than the oracle, and
// the diff's output equal to the oracle's on sampled version pairs.
func expDiff(c config) {
	scale := 120
	if c.n > 0 {
		scale = c.n
	}
	reps, pairs := 30, 6
	if c.quick {
		reps, pairs = 8, 3
	}

	x := workload.XMarkLite(scale, 7)
	src := x.String()
	st, err := ltree.Open(strings.NewReader(src), ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	total := len(st.Elements("*"))
	touches := total / 100
	if touches < 8 {
		touches = 8
	}
	fmt.Printf("xmark-lite scale %d: %d elements, %d bytes serialized; touching %d (~1%%) across batched commits\n\n",
		scale, total, len(src), touches)

	// Pin the base version, then every intermediate one, so version
	// pairs stay diffable after the writes retire them.
	base := st.SnapshotView()
	defer base.Close()
	versions := []uint64{base.Version()}
	var held []*ltree.Txn
	defer func() {
		for _, h := range held {
			h.Close()
		}
	}()

	items := st.Elements("item")
	if len(items) == 0 {
		items = st.Elements("*")
	}
	rng := rand.New(rand.NewSource(42))
	const perCommit = 16
	for done := 0; done < touches; {
		k := perCommit
		if touches-done < k {
			k = touches - done
		}
		err := st.Update(func(b *ltree.Batch) error {
			for i := 0; i < k; i++ {
				p := items[rng.Intn(len(items))]
				if _, err := b.InsertXML(p, 0, "<note/>"); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		done += k
		h := st.SnapshotView()
		held = append(held, h)
		versions = append(versions, h.Version())
	}
	baseV, curV := versions[0], versions[len(versions)-1]

	// Cold: the first diff digests every chunk once (the cost a
	// WAL-attached store amortizes across commits).
	start := time.Now()
	cs, err := st.DiffVersions(baseV, curV)
	coldT := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// Warm: best of reps, digests cached — the steady state.
	warmT := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		if cs, err = st.DiffVersions(baseV, curV); err != nil {
			fmt.Println("error:", err)
			return
		}
		if d := time.Since(start); d < warmT {
			warmT = d
		}
	}
	// Oracle: scan both versions in full, multiset-difference the
	// entries. Best of a few reps — it has no cache to warm.
	oracleT := time.Duration(1 << 62)
	var oraRem, oraAdd map[diffKey]int
	oReps := 1 + reps/6
	for r := 0; r < oReps; r++ {
		start := time.Now()
		oraRem, oraAdd, err = oracleDiff(st, baseV, curV)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if d := time.Since(start); d < oracleT {
			oracleT = d
		}
	}

	tbl := stats.NewTable(os.Stdout, "pair", "changes", "chunks touched", "chunks shared", "tags skipped", "diff µs (warm)", "oracle µs", "speedup")
	speedup := float64(oracleT) / float64(warmT)
	tbl.Row(fmt.Sprintf("%d→%d", baseV, curV), float64(len(cs.Changes)),
		float64(cs.Stats.ChunksTouched), float64(cs.Stats.ChunksShared), float64(cs.Stats.TagsSkipped),
		float64(warmT.Nanoseconds())/1e3, float64(oracleT.Nanoseconds())/1e3, speedup)
	tbl.Flush()
	fmt.Printf("\ncold first diff (digests every chunk once): %.1fµs\n\n", float64(coldT.Nanoseconds())/1e3)

	recordMetric("diff_warm_us", float64(warmT.Nanoseconds())/1e3, "us")
	recordMetric("diff_cold_us", float64(coldT.Nanoseconds())/1e3, "us")
	recordMetric("oracle_us", float64(oracleT.Nanoseconds())/1e3, "us")
	recordMetric("speedup", speedup, "x")
	recordMetric("chunks_touched", float64(cs.Stats.ChunksTouched), "chunks")
	recordMetric("chunks_shared", float64(cs.Stats.ChunksShared), "chunks")

	// Output equality on sampled version pairs, the end pair included.
	sampled := [][2]uint64{{baseV, curV}}
	for len(sampled) < pairs {
		i := rng.Intn(len(versions) - 1)
		j := i + 1 + rng.Intn(len(versions)-i-1)
		sampled = append(sampled, [2]uint64{versions[i], versions[j]})
	}
	equal := true
	for _, p := range sampled {
		pcs, err := st.DiffVersions(p[0], p[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rem, add := canonChanges(pcs)
		orem, oadd, err := oracleDiff(st, p[0], p[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if !mapsEqual(rem, orem) || !mapsEqual(add, oadd) {
			equal = false
			fmt.Printf("MISMATCH on %d→%d: diff %d-/%d+ vs oracle %d-/%d+\n",
				p[0], p[1], len(rem), len(add), len(orem), len(oadd))
		}
	}

	csRem, csAdd := canonChanges(cs)
	verdict(mapsEqual(csRem, oraRem) && mapsEqual(csAdd, oraAdd) && equal,
		fmt.Sprintf("DiffVersions output equals the full-fingerprint oracle on %d sampled version pairs", len(sampled)))
	verdict(speedup >= 10,
		fmt.Sprintf("hash-pruned diff ≥10× faster than fingerprinting both versions (measured %.1f×)", speedup))
	verdict(cs.Stats.ChunksShared > 0 && cs.Stats.TagsSkipped > 0,
		fmt.Sprintf("the walk skipped shared state (%d tags whole, %d chunks by pointer) — cost tracks changes, not size",
			cs.Stats.TagsSkipped, cs.Stats.ChunksShared))
	fmt.Println("(the oracle's cost is O(n) per diff regardless of how little changed; the hash-pruned")
	fmt.Println(" walk touches only unshared chunks — see DESIGN.md §10.)")
}

// diffKey is the content identity of one index entry: what both the
// diff and the oracle ultimately compare.
type diffKey struct {
	tag        string
	begin, end uint64
	level      int
}

// canonChanges flattens a ChangeSet to net (removed, added) multisets
// over entry content — a relabel contributes to both sides, and pairs
// that meet at the same content key cancel (two relabels can hand a
// label position from one node to another; the node-blind oracle sees
// no content change there).
func canonChanges(cs *ltree.ChangeSet) (rem, add map[diffKey]int) {
	rem, add = map[diffKey]int{}, map[diffKey]int{}
	for _, c := range cs.Changes {
		if c.Kind == ltree.ChangeRemoved || c.Kind == ltree.ChangeRelabeled {
			rem[diffKey{c.Tag, c.Old.Begin, c.Old.End, c.OldLevel}]++
		}
		if c.Kind == ltree.ChangeAdded || c.Kind == ltree.ChangeRelabeled {
			add[diffKey{c.Tag, c.New.Begin, c.New.End, c.Level}]++
		}
	}
	for k, r := range rem {
		a := add[k]
		if a == 0 {
			continue
		}
		m := r
		if a < m {
			m = a
		}
		rem[k] -= m
		add[k] -= m
		if rem[k] == 0 {
			delete(rem, k)
		}
		if add[k] == 0 {
			delete(add, k)
		}
	}
	return rem, add
}

// oracleDiff is the full-fingerprint baseline: scan every entry of both
// versions, then multiset-subtract. Its cost is O(|a|+|b|) no matter
// how small the difference.
func oracleDiff(st *ltree.Store, va, vb uint64) (rem, add map[diffKey]int, err error) {
	fa, err := fingerprintVersion(st, va)
	if err != nil {
		return nil, nil, err
	}
	fb, err := fingerprintVersion(st, vb)
	if err != nil {
		return nil, nil, err
	}
	rem, add = map[diffKey]int{}, map[diffKey]int{}
	for k, n := range fa {
		if d := n - fb[k]; d > 0 {
			rem[k] = d
		}
	}
	for k, n := range fb {
		if d := n - fa[k]; d > 0 {
			add[k] = d
		}
	}
	return rem, add, nil
}

// fingerprintVersion scans one pinned version's entire index content.
func fingerprintVersion(st *ltree.Store, v uint64) (map[diffKey]int, error) {
	tx, err := st.SnapshotAt(v)
	if err != nil {
		return nil, err
	}
	defer tx.Close()
	fp := map[diffKey]int{}
	for _, e := range tx.Elements("*") {
		lab, err := tx.Label(e)
		if err != nil {
			return nil, err
		}
		fp[diffKey{e.Tag(), lab.Begin, lab.End, e.Level()}]++
	}
	return fp, nil
}

func mapsEqual(a, b map[diffKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
