package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/ltree-db/ltree/internal/analysis"
	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/labeling"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// measureInserts bulk-loads n leaves, then performs n more single
// insertions at positions drawn from dist, returning the amortized
// nodes-touched per insertion and the final bits per label.
func measureInserts(p core.Params, n int, dist workload.Dist, seed int64) (amortized float64, bits int, err error) {
	tr, err := core.New(p)
	if err != nil {
		return 0, 0, err
	}
	if _, err := tr.Load(n); err != nil {
		return 0, 0, err
	}
	pos := workload.NewPositions(dist, seed)
	for i := 0; i < n; i++ {
		at := pos.Next(tr.Len())
		if at == 0 {
			_, err = tr.InsertFirst()
		} else {
			_, err = tr.InsertAfter(tr.LeafAt(at - 1))
		}
		if err != nil {
			return 0, 0, err
		}
	}
	return tr.Stats().AmortizedCost(), tr.BitsPerLabel(), nil
}

// expCost reproduces the §3.1 headline: amortized insertion cost is
// O(log n) and sits below the bound (1+2f/(s−1))·log_r(n) + f for every
// insertion locality.
func expCost(c config) {
	p := core.Params{F: 8, S: 2}
	ns := c.sizes([]int{1_000, 10_000, 100_000})
	fmt.Printf("parameters f=%d s=%d; n inserts into a tree bulk-loaded with n (final size 2n)\n\n", p.F, p.S)
	tbl := stats.NewTable(os.Stdout, "dist", "n", "measured cost", "paper bound", "ratio")
	allUnder := true
	growthOK := true
	var prevUniform float64
	for _, dist := range []workload.Dist{workload.Uniform, workload.Append, workload.Hotspot, workload.Front} {
		for _, n := range ns {
			measured, _, err := measureInserts(p, n, dist, 42)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			bound := analysis.UpdateCost(float64(p.F), float64(p.S), float64(2*n))
			tbl.Row(dist.String(), n, measured, bound, measured/bound)
			if measured > bound {
				allUnder = false
			}
			if dist == workload.Uniform {
				if prevUniform > 0 && measured > 2.5*prevUniform {
					growthOK = false // should grow like log n, i.e. ~+30%/decade
				}
				prevUniform = measured
			}
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(allUnder, "measured amortized cost ≤ analytic bound for every distribution and n")
	verdict(growthOK, "cost grows logarithmically with n (≈ +log r per decade), not linearly")
}

// expBits reproduces the §3.1 label-width claim: bits per label grow as
// log2(f−1)·log_r(n), far below the Ω(n) of persistent schemes.
func expBits(c config) {
	ns := c.sizes([]int{1_000, 10_000, 100_000})
	tbl := stats.NewTable(os.Stdout, "f", "s", "n", "measured bits", "bound bits", "paper(f+1) bound")
	ok := true
	for _, p := range []core.Params{{F: 4, S: 2}, {F: 8, S: 2}, {F: 16, S: 4}} {
		for _, n := range ns {
			_, bits, err := measureInserts(p, n, workload.Uniform, 7)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			bound := analysis.LabelBits(float64(p.F), float64(p.S), float64(2*n))
			paper := analysis.PaperLabelBits(float64(p.F), float64(p.S), float64(2*n))
			tbl.Row(p.F, p.S, n, bits, bound, paper)
			// Exact tree heights quantize; allow one level of slack.
			if float64(bits) > bound+lgf(p)+1 {
				ok = false
			}
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(ok, "measured label width tracks log2(f−1)·log_{f/s}(n) within one level")
}

func lgf(p core.Params) float64 {
	b := 0.0
	for v := p.F - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// expBaselines reproduces the motivation table: the L-Tree against the
// three regimes the paper positions itself between (§1, §5).
func expBaselines(c config) {
	n := 4_000
	if c.quick {
		n = 1_000
	}
	if c.n > 0 {
		n = c.n
	}
	fmt.Printf("n = %d initial slots, then %d single insertions per distribution\n\n", n, n)
	tbl := stats.NewTable(os.Stdout, "scheme", "dist", "relabels/insert", "bits/label", "note")
	type mk func() (labeling.Scheme, error)
	schemes := []struct {
		name string
		mk   mk
		note string
	}{
		{"ltree", func() (labeling.Scheme, error) { return labeling.NewLTree(8, 2) }, "O(log n) relabels, O(log n) bits"},
		{"sequential", func() (labeling.Scheme, error) { return labeling.NewSequential(), nil }, "≈ n/2 relabels (paper §1)"},
		{"gap", func() (labeling.Scheme, error) { return labeling.NewGap(16), nil }, "polylog relabels, O(log n) bits"},
		{"bisect", func() (labeling.Scheme, error) { return labeling.NewBisect(), nil }, "0 relabels, Ω(n) bits worst case"},
	}
	results := map[string]float64{}
	for _, sc := range schemes {
		for _, dist := range []workload.Dist{workload.Uniform, workload.Front} {
			s, err := sc.mk()
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			slots, err := s.Load(n)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			pos := workload.NewPositions(dist, 11)
			order := slots
			rng := rand.New(rand.NewSource(3))
			_ = rng
			for i := 0; i < n; i++ {
				at := pos.Next(len(order))
				var x labeling.Slot
				if at == 0 {
					x, err = s.InsertFirst()
				} else {
					x, err = s.InsertAfter(order[at-1])
				}
				if err != nil {
					fmt.Println("error:", err)
					return
				}
				order = append(order, nil)
				copy(order[at+1:], order[at:])
				order[at] = x
			}
			rel := float64(s.Stats().RelabeledLeaves) / float64(n)
			results[sc.name+"/"+dist.String()] = rel
			tbl.Row(sc.name, dist.String(), rel, s.Bits(), sc.note)
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(results["sequential/front"] > float64(n)/2,
		"sequential relabels the whole suffix (≈ n per front insert) — the paper's opening failure mode")
	verdict(results["ltree/uniform"] < results["sequential/uniform"]/20,
		"the L-Tree beats sequential by orders of magnitude on relabels")
	verdict(results["bisect/uniform"] <= 1,
		"bisection never relabels — but pays with unbounded label width (see bits column)")
	verdict(results["ltree/front"] <= results["gap/front"]*8,
		"the L-Tree is in the same relabeling class as gap labeling at worst (O(log n) vs O(log² n))")
}
