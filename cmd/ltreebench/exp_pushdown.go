package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/stats"
)

// expPushdown (E18) measures what the zig-zag join with chunk-level
// predicate pushdown buys over the PR-4 linear-context pipeline — both
// evaluators run the same chunked index version and differ only in
// EvalOptions.
//
// Table 1 sweeps predicate selectivity (1-in-1 … 1-in-512 categories)
// against path depth on a skewed corpus: attribute values run in
// contiguous document regions (the regime chunk summaries exist for —
// uniformly scattered values put every key in every chunk and no filter
// can help). The acceptance criteria pin: chunks decoded fall sublinearly
// with selectivity, wall-clock at the most selective point improves ≥2×,
// and the unselective full drain (every chunk passes the filter, so the
// summary probes are pure overhead) regresses ≤10%.
//
// Table 2 isolates the zig-zag half on a predicate-free path: a rare
// candidate deep in the document forces the join to drag the context
// stream forward; the bidirectional merge SeekOpens the context side past
// whole chunks whose maxEnd fence proves every interval closed, where the
// linear merge decodes them all.
func expPushdown(c config) {
	groups := 512
	sels := []int{1, 8, 64, 512}
	depths := []int{1, 3}
	if c.quick {
		groups = 128
		sels = []int{1, 8, 64}
	}
	if c.n > 0 {
		groups = c.n
	}
	for i, s := range sels {
		if s > groups {
			sels = sels[:i]
			break
		}
	}

	fmt.Printf("skewed corpus: %d groups x %d items, categories in contiguous runs; 256-entry chunks\n", groups, itemsPerGroup)
	fmt.Println("base = PR-4 pipeline (zig-zag+pushdown+memo off), push = production defaults; same index version")
	fmt.Println()
	tbl := stats.NewTable(os.Stdout,
		"depth", "1-in", "results", "base µs", "push µs", "speedup", "base dec", "push dec", "push skip")

	type point struct {
		sel              int
		baseNS, pushNS   float64
		baseDec, pushDec uint64
	}
	worst := map[int][]point{}
	for _, depth := range depths {
		for _, sel := range sels {
			d, ix, err := pushdownDoc(groups, sel, depth)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			expr := pushdownPath(depth, "[@cat='c0']")
			p, err := query.Parse(expr)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			nres := len(query.JoinMaterialized(d, ix, p))
			if nres == 0 {
				fmt.Println("error: selective path matches nothing")
				return
			}
			iters := 2000000 / (groups * itemsPerGroup / sel)
			if iters < 8 {
				iters = 8
			}
			// The unselective rows decide the ≤10% regression verdict with
			// a ratio of two same-magnitude timings, so they get the most
			// noise suppression.
			rounds := 3
			if sel == 1 {
				rounds = 7
			}
			baseNS := bestOf(rounds, iters, func() { drainWith(ix, p, legacyOpts) })
			pushNS := bestOf(rounds, iters, func() { drainWith(ix, p, query.EvalOptions{}) })
			baseDec, _ := countChunks(ix, p, legacyOpts)
			pushDec, pushSkip := countChunks(ix, p, query.EvalOptions{})
			tbl.Row(float64(depth), float64(sel), float64(nres),
				baseNS/1e3, pushNS/1e3, baseNS/pushNS,
				float64(baseDec), float64(pushDec), float64(pushSkip))
			worst[depth] = append(worst[depth], point{sel, baseNS, pushNS, baseDec, pushDec})
		}
	}
	tbl.Flush()
	fmt.Println()

	// Acceptance criteria, taken at the worst depth.
	topSpeed, drainReg, decRatio := 1e18, 0.0, 0.0
	for _, pts := range worst {
		first, last := pts[0], pts[len(pts)-1]
		if s := last.baseNS / last.pushNS; s < topSpeed {
			topSpeed = s
		}
		if r := first.pushNS / first.baseNS; r > drainReg {
			drainReg = r
		}
		// Sublinearity: decoded chunks must fall with selectivity, not
		// stay O(postings) like the baseline's.
		if r := float64(last.pushDec) / float64(last.baseDec); r > decRatio {
			decRatio = r
		}
	}
	lastSel := sels[len(sels)-1]
	verdict(topSpeed >= 2,
		fmt.Sprintf("most selective point (1-in-%d) wall-clock ≥2× over the linear pipeline (worst depth %.1f×)", lastSel, topSpeed))
	verdict(drainReg <= 1.10,
		fmt.Sprintf("unselective full drain within 10%% of baseline (worst %.2fx)", drainReg))
	verdict(decRatio <= 0.25,
		fmt.Sprintf("chunks decoded sublinear: ≤25%% of baseline at 1-in-%d (worst %.1f%%)", lastSel, decRatio*100))

	fmt.Println()
	fmt.Println("zig-zag context skip, predicate-free: one rare candidate at the document's end")
	tbl2 := stats.NewTable(os.Stdout,
		"depth", "linear µs", "zigzag µs", "speedup", "linear dec", "zigzag dec", "maxEnd skip")
	worstZig, worstZigDec := 1e18, 0.0
	for _, depth := range depths {
		d, ix, err := pushdownDoc(groups, 1, depth)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		p, err := query.Parse(pushdownRarePath(depth))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if len(query.JoinMaterialized(d, ix, p)) != 1 {
			fmt.Println("error: rare path lost its match")
			return
		}
		nozig := query.EvalOptions{DisableZigzag: true}
		iters := 256
		linNS := bestOf(3, iters, func() { drainWith(ix, p, nozig) })
		zigNS := bestOf(3, iters, func() { drainWith(ix, p, query.EvalOptions{}) })
		linDec, _ := countChunks(ix, p, nozig)
		zigDec, zigSkip := countChunks(ix, p, query.EvalOptions{})
		tbl2.Row(float64(depth), linNS/1e3, zigNS/1e3, linNS/zigNS,
			float64(linDec), float64(zigDec), float64(zigSkip))
		if s := linNS / zigNS; s < worstZig {
			worstZig = s
		}
		if r := float64(zigDec) / float64(linDec); r > worstZigDec {
			worstZigDec = r
		}
	}
	tbl2.Flush()
	fmt.Println()
	verdict(worstZigDec <= 0.5,
		fmt.Sprintf("zig-zag decodes ≤50%% of the linear merge's context chunks (worst %.1f%%)", worstZigDec*100))
	verdict(worstZig >= 1.2,
		fmt.Sprintf("zig-zag wall-clock ≥1.2× on the rare-candidate drag (worst %.1f×)", worstZig))
	fmt.Println("(per-chunk attribute summaries prove keys absent before any posting is decoded; the")
	fmt.Println(" maxEnd fence proves every interval in a chunk closed before the candidate — both are")
	fmt.Println(" one-sided, so a pass admits the chunk and the entry-level merge re-checks. DESIGN.md §3.5.)")
}

// legacyOpts reconstructs the PR-4 evaluator: linear context merge, no
// chunk filters, no verdict memo.
var legacyOpts = query.EvalOptions{DisableZigzag: true, DisablePushdown: true, DisableMemo: true}

// itemsPerGroup sizes each contiguous category run at a quarter-chunk
// granularity: one 256-entry chunk spans 4 groups, so only runs ≥ 4
// groups give the summary whole chunks to reject.
const itemsPerGroup = 64

// bestOf returns the fastest of r measureEval timings — the wall-clock
// comparisons here are ratios of two ~millisecond measurements on shared
// hardware, and min-of-runs is the standard defense against scheduler
// noise landing in one side of the ratio.
func bestOf(r, iters int, fn func()) float64 {
	best := 1e18
	for i := 0; i < r; i++ {
		ns, _ := measureEval(iters, fn)
		if ns < best {
			best = ns
		}
	}
	return best
}

// drainWith fully drains one evaluation.
func drainWith(ix *index.Index, p *query.Path, o query.EvalOptions) {
	cur := query.JoinCursorWith(ix, p, o)
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
	}
}

// countChunks runs one drain with a stats sink installed and reports
// (chunks decoded, chunks skipped whole); the sink is removed afterwards
// so timed runs stay accounting-free.
func countChunks(ix *index.Index, p *query.Path, o query.EvalOptions) (decoded, skipped uint64) {
	var st index.CursorStats
	ix.SetCursorStats(&st)
	drainWith(ix, p, o)
	ix.SetCursorStats(nil)
	return st.Decoded.Load(), st.Skipped()
}

// pushdownDoc builds the skewed corpus: `groups` runs of itemsPerGroup
// <item> leaves, each item tagged cat=c<category> where the category
// changes every groups/sel runs — contiguous category regions, so the
// begin-sorted item posting list clusters each category into few chunks.
// A second noise attribute varies per item to keep summaries honest, and
// the very last group carries one <rare/> leaf (the zig-zag target).
// depth>1 nests each group under a d2/d3/... chain so multi-step paths
// exercise the join cascade.
func pushdownDoc(groups, sel, depth int) (*document.Doc, *index.Index, error) {
	runLen := groups / sel
	if runLen < 1 {
		runLen = 1
	}
	var sb strings.Builder
	sb.WriteString("<root>")
	for g := 0; g < groups; g++ {
		sb.WriteString("<g>")
		for l := 2; l <= depth; l++ {
			fmt.Fprintf(&sb, "<d%d>", l)
		}
		cat := g / runLen
		for i := 0; i < itemsPerGroup; i++ {
			if g == groups-1 && i == itemsPerGroup-1 {
				// The zig-zag target: nested in the very last item, so the
				// rare-candidate path drags the full item posting list as
				// its context stream.
				fmt.Fprintf(&sb, `<item cat="c%d" id="n%d"><rare/></item>`, cat, i%16)
				continue
			}
			fmt.Fprintf(&sb, `<item cat="c%d" id="n%d"/>`, cat, i%16)
		}
		for l := depth; l >= 2; l-- {
			fmt.Fprintf(&sb, "</d%d>", l)
		}
		sb.WriteString("</g>")
	}
	sb.WriteString("</root>")
	d, err := document.Parse(strings.NewReader(sb.String()), core.Params{F: 8, S: 2})
	if err != nil {
		return nil, nil, err
	}
	return d, index.Build(d), nil
}

// pushdownPath renders the item query at the given join depth:
// //g/item[...], //g/d2/d3/item[...], ...
func pushdownPath(depth int, pred string) string {
	var sb strings.Builder
	sb.WriteString("//g")
	for l := 2; l <= depth; l++ {
		fmt.Fprintf(&sb, "/d%d", l)
	}
	sb.WriteString("/item")
	sb.WriteString(pred)
	return sb.String()
}

// pushdownRarePath targets the single <rare/> leaf nested in the last
// item: every join level's context stream (g, d-chain, and the big item
// list) consists of intervals closed long before the candidate opens, so
// the bidirectional merge can discard whole chunks by their maxEnd
// fences where the linear merge decodes the lot.
func pushdownRarePath(depth int) string {
	var sb strings.Builder
	if depth > 1 {
		sb.WriteString("//g")
		for l := 3; l <= depth; l++ {
			fmt.Fprintf(&sb, "//d%d", l)
		}
	}
	sb.WriteString("//item//rare")
	return sb.String()
}
