package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expForest measures what document partitioning buys over one store
// (E20): N shards mean N independent write pipelines, N WALs to replay
// in parallel at recovery, and a k-way merged read path that must not
// tax queries for the privilege. Three questions:
//
//	commit throughput  concurrent writers on distinct documents against
//	                   1/4/16 shards, WAL-backed — writes route to one
//	                   shard each, so shard count multiplies the
//	                   lock + group-commit pipelines.
//	recovery           OpenForest replays every shard concurrently:
//	                   wall-clock for the same documents and the same
//	                   op log split 4 ways vs one way.
//	merged drain       draining a scatter-gather query over 4 shards vs
//	                   the same data in a single shard. The one-shot
//	                   Forest.Query scatters per-shard goroutines and
//	                   merges sorted runs slice-to-slice — with cores it
//	                   must stay within 1.15× of one shard. The pinned
//	                   ForestTxn streaming drain (sequential k-way merge
//	                   cursor) is reported alongside for visibility into
//	                   the per-entry merge tax.
func expForest(c config) {
	docs, docScale, writers, opsPerWriter, reps := 24, 8, 8, 40, 5
	if c.quick {
		docs, docScale, writers, opsPerWriter, reps = 8, 4, 4, 15, 3
	}
	if c.n > 0 {
		docs = c.n
	}
	if docs < writers {
		writers = docs
	}
	srcs := make([]string, docs)
	for i := range srcs {
		srcs[i] = workload.XMarkLite(docScale, int64(i+1)).String()
	}
	fmt.Printf("%d xmark-lite docs (scale %d, %d bytes each serialized), %d writers × %d commits, best of %d drains\n\n",
		docs, docScale, len(srcs[0]), writers, opsPerWriter, reps)

	// Round-robin placement on the doc number: the experiment measures
	// pipeline parallelism, so writers must spread across shards
	// deterministically rather than by hash luck.
	part := ltree.PartitionerFunc(func(id string, n int) int {
		num, _ := strconv.Atoi(id[len(id)-2:])
		return num % n
	})
	docID := func(i int) string { return fmt.Sprintf("doc-%02d", i) }

	seed := func(f *ltree.Forest) error {
		for i, src := range srcs {
			if _, err := f.Put(docID(i), src); err != nil {
				return err
			}
		}
		return nil
	}

	// ---- commit throughput: concurrent writers vs shard count ----
	tbl := stats.NewTable(os.Stdout, "shards", "commits/sec", "vs 1 shard", "docs/shard")
	var rate1, rate4 float64
	for _, shards := range []int{1, 4, 16} {
		dir, err := os.MkdirTemp("", "ltreebench-forest-*")
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		f, err := ltree.OpenForest(dir, ltree.ForestOptions{Shards: shards, Partitioner: part})
		if err != nil {
			fmt.Println("error:", err)
			os.RemoveAll(dir)
			return
		}
		if err := seed(f); err != nil {
			fmt.Println("error:", err)
			f.Close()
			os.RemoveAll(dir)
			return
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				id := docID(w)
				for i := 0; i < opsPerWriter; i++ {
					errs[w] = f.Update(id, func(b *ltree.Batch, root *ltree.Elem) error {
						_, err := b.InsertXML(root, 0, "<item><name>fresh</name></item>")
						return err
					})
					if errs[w] != nil {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Println("error:", err)
				f.Close()
				os.RemoveAll(dir)
				return
			}
		}
		rate := float64(writers*opsPerWriter) / elapsed.Seconds()
		switch shards {
		case 1:
			rate1 = rate
		case 4:
			rate4 = rate
		}
		if err := f.Check(); err != nil {
			fmt.Println("error:", err)
		}
		tbl.Row(strconv.Itoa(shards), rate, rate/rate1, float64(docs)/float64(shards))
		recordMetric(fmt.Sprintf("commit_throughput_shards_%d", shards), rate, "commits/sec")
		f.Close()
		os.RemoveAll(dir)
	}
	tbl.Flush()
	fmt.Println()

	// ---- recovery: parallel shard replay vs one log ----
	// Same documents, same post-seed commit log, no checkpoints after
	// boot — recovery replays everything; only the split differs.
	buildForRecovery := func(shards int) (string, *ltree.Forest, error) {
		dir, err := os.MkdirTemp("", "ltreebench-forest-rec-*")
		if err != nil {
			return "", nil, err
		}
		f, err := ltree.OpenForest(dir, ltree.ForestOptions{Shards: shards, Partitioner: part})
		if err != nil {
			os.RemoveAll(dir)
			return "", nil, err
		}
		if err := seed(f); err == nil {
			for i := 0; i < docs*3; i++ {
				err = f.Update(docID(i%docs), func(b *ltree.Batch, root *ltree.Elem) error {
					_, e := b.InsertXML(root, 0, "<item><name>replayed</name></item>")
					return e
				})
				if err != nil {
					break
				}
			}
		} else {
			f.Close()
			os.RemoveAll(dir)
			return "", nil, err
		}
		return dir, f, nil
	}
	recover := func(dir string) (*ltree.Forest, time.Duration, error) {
		best := time.Duration(0)
		var f *ltree.Forest
		runs := 2
		if c.quick {
			runs = 1
		}
		for r := 0; r < runs; r++ {
			if f != nil {
				f.Close()
			}
			start := time.Now()
			var err error
			f, err = ltree.OpenForest(dir, ltree.ForestOptions{})
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return f, best, nil
	}

	times := map[int]time.Duration{}
	elems := map[int]int{}
	var recovered []*ltree.Forest
	var recDirs []string
	for _, shards := range []int{1, 4} {
		dir, f, err := buildForRecovery(shards)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		f.Close()
		rf, d, err := recover(dir)
		if err != nil {
			fmt.Println("error:", err)
			os.RemoveAll(dir)
			return
		}
		times[shards] = d
		elems[shards] = rf.Count("*")
		recovered = append(recovered, rf)
		recDirs = append(recDirs, dir)
		recordMetric(fmt.Sprintf("recovery_ms_shards_%d", shards), float64(d.Milliseconds()), "ms")
	}
	defer func() {
		for i, rf := range recovered {
			rf.Close()
			os.RemoveAll(recDirs[i])
		}
	}()
	fmt.Printf("recovery (checkpoint + full replay, %d docs + %d update commits):\n", docs, docs*3)
	fmt.Printf("  1 shard : %8.1f ms\n", float64(times[1].Microseconds())/1000)
	fmt.Printf("  4 shards: %8.1f ms  (%.2fx faster)\n\n",
		float64(times[4].Microseconds())/1000, times[1].Seconds()/times[4].Seconds())

	// ---- merged drain: the read-path cost of scatter-gather ----
	// Two drains per forest. Forest.Query is the one-shot surface: the
	// per-shard pipelines run on their own goroutines and the sorted runs
	// are merged slice-to-slice, so with cores available the 4-shard
	// drain should be at worst marginally slower — and often faster —
	// than one shard. The pinned ForestTxn drain streams entry-at-a-time
	// through the k-way merge cursor: strictly sequential, it pays a
	// fixed per-entry dispatch tax and is reported for visibility.
	const drainExpr = "//item[@id]/name"
	drain := func(f *ltree.Forest) (time.Duration, int, error) {
		best := time.Duration(0)
		n := 0
		for r := 0; r < reps; r++ {
			start := time.Now()
			es, err := f.Query(drainExpr)
			if err != nil {
				return 0, 0, err
			}
			n = len(es)
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, n, nil
	}
	drainStream := func(f *ltree.Forest) (time.Duration, int, error) {
		best := time.Duration(0)
		n := 0
		for r := 0; r < reps; r++ {
			start := time.Now()
			n = 0
			err := f.View(func(tx *ltree.ForestTxn) error {
				res, err := tx.Query(drainExpr)
				if err != nil {
					return err
				}
				for _, ok := res.Next(); ok; _, ok = res.Next() {
					n++
				}
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, n, nil
	}
	d1, n1, err := drain(recovered[0])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d4, n4, err := drain(recovered[1])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ratio := d4.Seconds() / d1.Seconds()
	fmt.Printf("parallel drain of %s (%d matches, Forest.Query): 1 shard %.2f ms, 4 shards %.2f ms (%.2fx)\n",
		drainExpr, n1, float64(d1.Microseconds())/1000, float64(d4.Microseconds())/1000, ratio)
	recordMetric("drain_ratio_4shard_vs_1shard", ratio, "x")
	s1, _, err := drainStream(recovered[0])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s4, sn4, err := drainStream(recovered[1])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	streamRatio := s4.Seconds() / s1.Seconds()
	fmt.Printf("streaming drain (pinned ForestTxn, k-way merge cursor): 1 shard %.2f ms, 4 shards %.2f ms (%.2fx)\n\n",
		float64(s1.Microseconds())/1000, float64(s4.Microseconds())/1000, streamRatio)
	recordMetric("stream_drain_ratio_4shard_vs_1shard", streamRatio, "x")

	// ---- verdicts ----
	verdict(n1 == n4 && n4 == sn4 && elems[1] == elems[4] && recovered[0].Len() == docs && recovered[1].Len() == docs,
		fmt.Sprintf("sharding is invisible to results: both recovered forests hold %d docs, %d elements, %d matches", docs, elems[1], n1))
	if runtime.NumCPU() >= 2 {
		verdict(ratio <= 1.15,
			fmt.Sprintf("parallel scatter-gather drain stays within 1.15x of a single shard (%.2fx)", ratio))
		verdict(rate4 >= 2*rate1,
			fmt.Sprintf("4-shard concurrent-writer throughput ≥2x one store (%.0f vs %.0f commits/s, %.1fx)", rate4, rate1, rate4/rate1))
		verdict(times[4].Seconds() <= times[1].Seconds()/1.5,
			fmt.Sprintf("4-way parallel recovery ≥1.5x faster (%v vs %v, %.2fx)", times[4].Round(time.Millisecond), times[1].Round(time.Millisecond), times[1].Seconds()/times[4].Seconds()))
	} else {
		fmt.Println("(1 CPU: drain-tax bound, commit-throughput and parallel-recovery speedups not asserted — shard goroutines need cores; measured ratios printed above)")
	}
}
