package main

import (
	"fmt"
	"os"

	"github.com/ltree-db/ltree/internal/analysis"
	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expTune reproduces §3.2 model 1: sweep the feasible (f, s) lattice,
// measure the real amortized cost, and compare the analytic optimum (and
// the continuous ∂cost/∂f = ∂cost/∂s = 0 solution) with the empirical one.
func expTune(c config) {
	n := 50_000
	if c.quick {
		n = 10_000
	}
	if c.n > 0 {
		n = c.n
	}
	fmt.Printf("n = %d (load n, insert n uniform)\n\n", n)
	type row struct {
		f, s                int
		predicted, measured float64
	}
	var rows []row
	for s := 2; s <= 4; s++ {
		for r := 2; r*s <= 32; r++ {
			f := r * s
			measured, _, err := measureInserts(core.Params{F: f, S: s}, n, workload.Uniform, 5)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			rows = append(rows, row{f, s, analysis.UpdateCost(float64(f), float64(s), float64(2*n)), measured})
		}
	}
	bestPred, bestMeas := rows[0], rows[0]
	tbl := stats.NewTable(os.Stdout, "f", "s", "r", "predicted", "measured")
	for _, r := range rows {
		tbl.Row(r.f, r.s, r.f/r.s, r.predicted, r.measured)
		if r.predicted < bestPred.predicted {
			bestPred = r
		}
		if r.measured < bestMeas.measured {
			bestMeas = r
		}
	}
	tbl.Flush()
	fCont, sCont, cCont := analysis.ContinuousMin(float64(2 * n))
	fmt.Printf("\ncontinuous optimum (∂cost=0): f*=%.1f s*=%.1f cost %.1f\n", fCont, sCont, cCont)
	fmt.Printf("lattice analytic optimum:     f=%d s=%d (predicted %.1f)\n", bestPred.f, bestPred.s, bestPred.predicted)
	fmt.Printf("empirical optimum:            f=%d s=%d (measured %.2f)\n", bestMeas.f, bestMeas.s, bestMeas.measured)
	// The analytic winner should be near-optimal empirically (within 40%).
	var analyticMeasured float64
	for _, r := range rows {
		if r.f == bestPred.f && r.s == bestPred.s {
			analyticMeasured = r.measured
		}
	}
	verdict(analyticMeasured <= 1.4*bestMeas.measured,
		"the model's argmin is near-optimal when measured (crossover structure matches)")
}

// expBudget reproduces §3.2 model 2: the Lagrange/boundary solution under
// label-width budgets, then verifies the chosen parameters really fit.
func expBudget(c config) {
	n := 50_000
	if c.quick {
		n = 10_000
	}
	if c.n > 0 {
		n = c.n
	}
	nFinal := float64(2 * n)
	tbl := stats.NewTable(os.Stdout, "budget bits", "chosen f", "chosen s", "predicted cost", "predicted bits", "measured bits", "measured cost")
	ok := true
	for _, budget := range []float64{16, 24, 32, 48, 64} {
		choice, err := analysis.MinimizeCostUnderBits(nFinal, budget, 256)
		if err != nil {
			tbl.Row(budget, "-", "-", "-", "-", "-", "infeasible")
			continue
		}
		measured, bits, err := measureInserts(core.Params{F: choice.F, S: choice.S}, n, workload.Uniform, 5)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		tbl.Row(budget, choice.F, choice.S, choice.Cost, choice.Bits, bits, measured)
		if float64(bits) > budget {
			ok = false
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(ok, "every constrained choice keeps measured labels within its bit budget")
	// Costs must decrease as the budget loosens.
	loose, _ := analysis.MinimizeCostUnderBits(nFinal, 64, 256)
	tight, err := analysis.MinimizeCostUnderBits(nFinal, 16, 256)
	if err == nil {
		verdict(loose.Cost <= tight.Cost,
			"looser budgets buy lower update cost (the paper's bits-for-cost trade)")
	}
}

// expMix reproduces §3.2 model 3: the combined query+update optimum shifts
// toward narrower labels as the workload becomes query-heavy (with a small
// machine word making label width expensive).
func expMix(c config) {
	n := 100_000
	if c.n > 0 {
		n = c.n
	}
	word := 16.0 // a small word makes the effect visible at bench scale
	tbl := stats.NewTable(os.Stdout, "query fraction", "f", "s", "bits", "update cost", "query cost/cmp", "combined")
	var prevBits float64 = -1
	monotone := true
	for _, q := range []float64{0.0, 0.10, 0.50, 0.90, 0.99} {
		choice := analysis.MinimizeMixed(float64(n), q, word, 256)
		u := analysis.UpdateCost(float64(choice.F), float64(choice.S), float64(n))
		qc := analysis.QueryCompareCost(choice.Bits, word)
		tbl.Row(q, choice.F, choice.S, choice.Bits, u, qc, (1-q)*u+q*qc)
		if prevBits >= 0 && choice.Bits > prevBits+12 {
			monotone = false // label width should not explode as q grows
		}
		prevBits = choice.Bits
	}
	tbl.Flush()
	fmt.Println()
	q0 := analysis.MinimizeMixed(float64(n), 0, word, 256)
	q99 := analysis.MinimizeMixed(float64(n), 0.99, word, 256)
	verdict(q99.Bits <= q0.Bits && monotone,
		"query-heavy workloads choose narrower labels (cheaper comparisons) at higher update cost")
}

// expBulk reproduces §4.1: the amortized per-leaf cost of inserting runs
// of k leaves falls roughly logarithmically with k.
func expBulk(c config) {
	n := 4_096
	total := 1 << 16
	if c.quick {
		total = 1 << 13
	}
	p := core.Params{F: 8, S: 2}
	fmt.Printf("f=%d s=%d, base tree %d leaves, %d leaves inserted per row\n\n", p.F, p.S, n, total)
	tbl := stats.NewTable(os.Stdout, "run size k", "measured cost/leaf", "paper bound", "speedup vs k=1")
	var base float64
	ok := true
	var prev float64
	for _, k := range []int{1, 2, 4, 8, 16, 64, 256, 1024, 3000} {
		tr, err := core.New(p)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if _, err := tr.Load(n); err != nil {
			fmt.Println("error:", err)
			return
		}
		pos := workload.NewPositions(workload.Uniform, 13)
		for inserted := 0; inserted < total; inserted += k {
			at := pos.Next(tr.Len())
			if at == 0 {
				_, err = tr.InsertRunFirst(k)
			} else {
				_, err = tr.InsertRunAfter(tr.LeafAt(at-1), k)
			}
			if err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		measured := tr.Stats().AmortizedCost()
		bound := analysis.BulkCost(float64(p.F), float64(p.S), float64(n+total), float64(k))
		if k == 1 {
			base = measured
		}
		tbl.Row(k, measured, bound, base/measured)
		if prev > 0 && measured > prev*1.15 {
			ok = false // must be (weakly) decreasing in k
		}
		prev = measured
	}
	tbl.Flush()
	fmt.Println()
	verdict(ok, "per-leaf cost falls monotonically with run size")
	verdict(base/prev > 3,
		"large runs are several times cheaper per leaf — but the gain is logarithmic, not linear (§4.1)")
}
