package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
)

// expWal measures what the WAL buys on the commit path: with a snapshot
// backend, every committed batch rewrites the whole document image — the
// one O(document) step in an otherwise incremental engine — while a WAL
// appends one CRC-framed record proportional to the batch. Three
// persistence strategies run the same xmark-lite insertion stream:
//
//	snapshot/save   SaveVersion (full v2 snapshot) after every commit
//	wal/sync-each   WAL append, fsync per commit (full durability)
//	wal/group-16    WAL append, fsync every 16 commits (group commit)
//
// The table reports mean commit latency and bytes written per commit;
// the verdicts check the WAL's ≥5× commit-latency win and that recovery
// (checkpoint + replay of the whole log) reproduces the live store
// exactly.
func expWal(c config) {
	scale := 120
	commits := 300
	if c.quick {
		scale, commits = 15, 60
	}
	if c.n > 0 {
		scale = c.n
	}
	x := workload.XMarkLite(scale, 11)
	src := x.String()
	fmt.Printf("xmark-lite scale %d: %d tokens, %d bytes serialized; %d single-insert commits\n\n",
		scale, x.CountTokens(), len(src), commits)

	type result struct {
		perCommit  time.Duration
		bytesPer   float64
		recovered  bool
		recoverErr error
	}
	results := map[string]result{}

	tbl := stats.NewTable(os.Stdout, "strategy", "commit µs", "bytes/commit", "recovery")
	for _, strat := range []string{"snapshot/save", "wal/sync-each", "wal/group-16"} {
		r, err := runWalStrategy(strat, src, commits)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		results[strat] = r
		rec := "n/a"
		if strat != "snapshot/save" {
			rec = "PASS"
			if !r.recovered {
				rec = "FAIL"
			}
		}
		tbl.Row(strat, float64(r.perCommit.Nanoseconds())/1e3, r.bytesPer, rec)
	}
	tbl.Flush()
	fmt.Println()

	snap, walEach, walGroup := results["snapshot/save"], results["wal/sync-each"], results["wal/group-16"]
	ratio := float64(snap.perCommit) / float64(walEach.perCommit)
	verdict(ratio >= 5,
		fmt.Sprintf("WAL append commits ≥5× faster than snapshot-per-save (measured %.1f×)", ratio))
	verdict(walGroup.perCommit <= walEach.perCommit,
		"group commit is no slower than fsync-per-append (sanity)")
	verdict(walEach.recovered && walGroup.recovered,
		"recovery (checkpoint + full log replay) reproduces the live store bit-identically")
	if walEach.recoverErr != nil || walGroup.recoverErr != nil {
		fmt.Println("recovery errors:", walEach.recoverErr, walGroup.recoverErr)
	}
	fmt.Println("(snapshot-per-save rewrites O(document) per commit; the WAL appends O(batch) —")
	fmt.Println(" the gap widens with document size. Checkpoint on a cadence bounds replay time.)")
}

// runWalStrategy drives one persistence strategy through the same
// deterministic insertion stream and measures the commit path.
func runWalStrategy(strat, src string, commits int) (r struct {
	perCommit  time.Duration
	bytesPer   float64
	recovered  bool
	recoverErr error
}, err error) {
	dir, err := os.MkdirTemp("", "ltreebench-wal-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)

	st, err := ltree.OpenString(src, ltree.DefaultParams)
	if err != nil {
		return r, err
	}
	var backend ltree.Backend
	var wal ltree.WALBackend
	switch strat {
	case "snapshot/save":
		if backend, err = ltree.NewFileBackend(dir); err != nil {
			return r, err
		}
	case "wal/sync-each":
		if wal, err = ltree.NewWALBackend(dir, ltree.WALOptions{}); err != nil {
			return r, err
		}
	case "wal/group-16":
		if wal, err = ltree.NewWALBackend(dir, ltree.WALOptions{SyncEvery: 16}); err != nil {
			return r, err
		}
	}
	if wal != nil {
		defer wal.Close()
		if err := st.WithWAL(wal); err != nil {
			return r, err
		}
	}

	rng := rand.New(rand.NewSource(7))
	regions := st.Elements("asia")
	if len(regions) == 0 {
		regions = st.Elements("*")
	}
	parent := regions[0]

	start := time.Now()
	for i := 0; i < commits; i++ {
		err := st.Update(func(tx *ltree.Batch) error {
			_, err := tx.InsertXML(parent, rng.Intn(parent.NumChildren()+1),
				`<item><name>fresh</name></item>`)
			return err
		})
		if err != nil {
			return r, err
		}
		if backend != nil {
			if _, err := st.SaveVersion(backend); err != nil {
				return r, err
			}
		}
	}
	if wal != nil {
		if err := wal.Sync(); err != nil { // flush the group-commit tail
			return r, err
		}
	}
	r.perCommit = time.Since(start) / time.Duration(commits)
	r.bytesPer = float64(dirBytes(dir)) / float64(commits)

	if wal != nil {
		var live bytes.Buffer
		if err := st.Snapshot(&live); err != nil {
			return r, err
		}
		recovered, rerr := ltree.LoadLatest(wal)
		if rerr != nil {
			r.recoverErr = rerr
		} else {
			var rec bytes.Buffer
			if err := recovered.Snapshot(&rec); err != nil {
				return r, err
			}
			r.recovered = bytes.Equal(live.Bytes(), rec.Bytes()) && recovered.Check() == nil
		}
	}
	return r, nil
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}
