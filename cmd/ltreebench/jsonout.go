package main

import (
	"encoding/json"
	"os"
	"runtime"
)

// This file is the machine-readable side of the harness: every verdict,
// and any metric an experiment chooses to record, lands in one JSON
// report that -json <path> writes at exit. CI uploads these next to the
// plain-text tables so dashboards and regression diffs consume numbers,
// not scraped prose. The text output stays the human contract; the JSON
// is additive.

type benchMetric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

type benchVerdict struct {
	OK    bool   `json:"ok"`
	Claim string `json:"claim"`
}

type benchExperiment struct {
	Metrics  []benchMetric  `json:"metrics,omitempty"`
	Verdicts []benchVerdict `json:"verdicts,omitempty"`
}

type benchReport struct {
	GOOS        string                      `json:"goos"`
	GOARCH      string                      `json:"goarch"`
	GOMAXPROCS  int                         `json:"gomaxprocs"`
	NumCPU      int                         `json:"numcpu"`
	Quick       bool                        `json:"quick"`
	Experiments map[string]*benchExperiment `json:"experiments"`
}

var benchOut = benchReport{Experiments: map[string]*benchExperiment{}}

// benchCurrentExp is the experiment id the main loop is running; metrics
// and verdicts recorded while it is set attach to that experiment.
var benchCurrentExp string

func benchExp() *benchExperiment {
	e, ok := benchOut.Experiments[benchCurrentExp]
	if !ok {
		e = &benchExperiment{}
		benchOut.Experiments[benchCurrentExp] = e
	}
	return e
}

// recordMetric attaches one named measurement to the running experiment.
// A no-op outside the experiment loop, so helpers can call it blindly.
func recordMetric(name string, value float64, unit string) {
	if benchCurrentExp == "" {
		return
	}
	e := benchExp()
	e.Metrics = append(e.Metrics, benchMetric{Name: name, Value: value, Unit: unit})
}

// recordVerdict mirrors a printed PASS/FAIL line into the report.
func recordVerdict(ok bool, claim string) {
	if benchCurrentExp == "" {
		return
	}
	e := benchExp()
	e.Verdicts = append(e.Verdicts, benchVerdict{OK: ok, Claim: claim})
}

// writeBenchJSON writes the accumulated report.
func writeBenchJSON(path string, quick bool) error {
	benchOut.GOOS = runtime.GOOS
	benchOut.GOARCH = runtime.GOARCH
	benchOut.GOMAXPROCS = runtime.GOMAXPROCS(0)
	benchOut.NumCPU = runtime.NumCPU()
	benchOut.Quick = quick
	data, err := json.MarshalIndent(benchOut, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
