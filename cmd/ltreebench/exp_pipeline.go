package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/stats"
)

// expPipeline measures what the lazy cursor pipeline buys on deep paths:
// intermediate memory and time-to-first-result. Both evaluators run over
// the same chunked index version; they differ only in evaluation
// strategy — the materialized PR-3 join allocates every step's result
// set, the cursor pipeline keeps one ancestor stack per step (O(depth)).
//
// The sweep crosses path depth (4–8 child steps) with branch fan-out
// (how many matches the unselective path produces), so "alloc per query"
// is read along a row to see growth in the result-set size. The
// ISSUE-4 acceptance criteria pin: lazy intermediate allocations stay
// flat across result-set size while the materialized baseline grows
// linearly, and first-result latency on a selective deep path improves
// measurably.
func expPipeline(c config) {
	depths := []int{4, 6, 8}
	widths := c.sizes([]int{10, 100, 1000})
	if c.quick {
		depths = []int{4, 6}
		widths = c.sizes([]int{10, 100})
	}

	fmt.Println("deep rooted child chains, unselective path (matches every branch leaf)")
	fmt.Println("eager = JoinMaterialized (PR-3), lazy = cursor pipeline (JoinCursor); same chunked index")
	fmt.Println()
	tbl := stats.NewTable(os.Stdout,
		"depth", "width", "results", "eager µs", "lazy µs", "eager B/q", "lazy B/q")

	// alloc growth across the widest sweep, per depth: the headline claim.
	type growth struct{ eager, lazy float64 }
	grow := map[int]growth{}
	for _, depth := range depths {
		var eagerLo, eagerHi, lazyLo, lazyHi float64
		for wi, width := range widths {
			d, ix, err := pipelineDoc(depth, width)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			p, err := query.Parse(pipelinePath(depth, "leaf"))
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			iters := 40000 / width
			if iters < 8 {
				iters = 8
			}
			nres := len(query.JoinMaterialized(d, ix, p))
			eagerNS, eagerB := measureEval(iters, func() {
				query.JoinMaterialized(d, ix, p)
			})
			lazyNS, lazyB := measureEval(iters, func() {
				cur := query.JoinCursor(ix, p)
				for _, ok := cur.Next(); ok; _, ok = cur.Next() {
				}
			})
			tbl.Row(float64(depth), float64(width), float64(nres),
				eagerNS/1e3, lazyNS/1e3, eagerB, lazyB)
			if wi == 0 {
				eagerLo, lazyLo = eagerB, lazyB
			}
			if wi == len(widths)-1 {
				eagerHi, lazyHi = eagerB, lazyB
			}
		}
		grow[depth] = growth{eager: eagerHi / eagerLo, lazy: lazyHi / lazyLo}
	}
	tbl.Flush()
	fmt.Println()

	widest := float64(widths[len(widths)-1]) / float64(widths[0])
	worstLazy, worstEager := 0.0, widest
	for _, depth := range depths {
		g := grow[depth]
		if g.lazy > worstLazy {
			worstLazy = g.lazy
		}
		if g.eager < worstEager {
			worstEager = g.eager
		}
	}
	verdict(worstLazy <= 3,
		fmt.Sprintf("lazy intermediate allocations flat across a %.0f× result-set sweep (worst growth %.2f×)",
			widest, worstLazy))
	verdict(worstEager >= 3*worstLazy,
		fmt.Sprintf("materialized baseline grows with the result set (worst-case eager %.1f× vs lazy %.2f×)",
			worstEager, worstLazy))

	// Selective deep path: one branch in the whole document ends in the
	// rare tag, so the full answer is a single element. The lazy pipeline
	// surfaces it without evaluating anything else to completion; the
	// materialized join must finish every step first.
	fmt.Println()
	fmt.Println("selective path (1 match): time to FIRST result")
	tbl2 := stats.NewTable(os.Stdout, "depth", "width", "eager-full µs", "lazy-first µs", "speedup")
	worstSpeedup := 1e18
	for _, depth := range depths {
		width := widths[len(widths)-1]
		d, ix, err := pipelineDoc(depth, width)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		p, err := query.Parse(pipelinePath(depth, "rare"))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		iters := 40000 / width
		if iters < 8 {
			iters = 8
		}
		eagerNS, _ := measureEval(iters, func() {
			query.JoinMaterialized(d, ix, p)
		})
		lazyNS, _ := measureEval(iters, func() {
			if _, ok := query.JoinCursor(ix, p).Next(); !ok {
				panic("selective path lost its match")
			}
		})
		speedup := eagerNS / lazyNS
		if speedup < worstSpeedup {
			worstSpeedup = speedup
		}
		tbl2.Row(float64(depth), float64(width), eagerNS/1e3, lazyNS/1e3, speedup)
	}
	tbl2.Flush()
	fmt.Println()
	verdict(worstSpeedup > 1.5,
		fmt.Sprintf("first result on a selective deep path beats materialized evaluation (worst %.1f×)", worstSpeedup))
	fmt.Println("(the lazy pipeline holds one O(document-depth) ancestor stack per step and streams")
	fmt.Println(" matches as the merge discovers them; the materialized join allocates every step's")
	fmt.Println(" full result set before the first match is visible — see DESIGN.md §3.4.)")
}

// pipelineDoc builds a root with width branches, each a chain
// l1/l2/…/l<depth> ending in a <leaf/>; the middle branch's chain ends in
// an extra <rare/> (the selective target). Returns the labeled document
// and a default-chunked index version over it.
func pipelineDoc(depth, width int) (*document.Doc, query.Index, error) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for b := 0; b < width; b++ {
		for l := 1; l <= depth; l++ {
			fmt.Fprintf(&sb, "<l%d>", l)
		}
		sb.WriteString("<leaf/>")
		if b == width/2 {
			sb.WriteString("<rare/>")
		}
		for l := depth; l >= 1; l-- {
			fmt.Fprintf(&sb, "</l%d>", l)
		}
	}
	sb.WriteString("</root>")
	d, err := document.Parse(strings.NewReader(sb.String()), core.Params{F: 8, S: 2})
	if err != nil {
		return nil, nil, err
	}
	return d, index.Build(d), nil
}

// pipelinePath renders the rooted child chain /root/l1/…/l<depth>/<last>.
func pipelinePath(depth int, last string) string {
	var sb strings.Builder
	sb.WriteString("/root")
	for l := 1; l <= depth; l++ {
		fmt.Fprintf(&sb, "/l%d", l)
	}
	sb.WriteString("/")
	sb.WriteString(last)
	return sb.String()
}

// measureEval times fn over iters runs and reports (mean ns, mean heap
// bytes allocated per run). TotalAlloc is monotonic, so the delta is
// unaffected by GC; the explicit GC beforehand settles the heap so
// neither evaluator pays the other's garbage. One warmup run keeps
// per-index-version one-time work (the cached "*" flatten a rooted
// anchor touches) out of the per-query numbers.
func measureEval(iters int, fn func()) (nsPerOp, bytesPerOp float64) {
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
}
