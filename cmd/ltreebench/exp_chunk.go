package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/stats"
)

// expChunk measures what chunked posting lists buy on the write path:
// the copy-on-write floor of a single-op commit into one hot tag. The
// flat baseline re-derives the whole tag's posting list per batch (the
// PR-1 representation: one pass with label re-reads plus a merge); the
// chunked index copies only the chunks the batch lands in. The sweep
// crosses tag fan-in (how many same-tag elements the hot tag holds)
// with chunk size; each cell is the 10%-trimmed-mean index-patch cost
// of a single-insert commit, document maintenance excluded (trimmed:
// on a shared heap a single GC pause would otherwise dominate a whole
// cell, while a plain median teeters on bimodal cells).
//
// The verdicts pin the ISSUE-3 acceptance criteria: chunked cost stays
// flat (within 2×) across a 10× fan-in growth while the flat baseline
// grows linearly with the tag.
func expChunk(c config) {
	fanins := c.sizes([]int{500, 5_000, 50_000})
	commits := 600
	if c.quick {
		fanins = c.sizes([]int{200, 2_000})
		commits = 150
	}
	chunkSizes := []int{64, index.DefaultChunkSize, 1024}

	fmt.Printf("single-insert commits into one hot tag; %d commits per cell, trimmed-mean patch µs\n\n", commits)
	header := []string{"fan-in", "flat µs"}
	for _, cs := range chunkSizes {
		header = append(header, fmt.Sprintf("chunk%d µs", cs))
	}
	header = append(header, "chunks@256")
	tbl := stats.NewTable(os.Stdout, header...)

	flatCost := map[int]float64{}
	chunkCost := map[int]map[int]float64{} // fan-in -> chunk size -> µs
	for _, n := range fanins {
		row := []any{float64(n)}
		flat, err := runFlatPatch(n, commits)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		flatCost[n] = flat
		row = append(row, flat)
		chunkCost[n] = map[int]float64{}
		var chunks256 int
		for _, cs := range chunkSizes {
			cost, nchunks, err := runChunkPatch(n, cs, commits)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			chunkCost[n][cs] = cost
			if cs == index.DefaultChunkSize {
				chunks256 = nchunks
			}
			row = append(row, cost)
		}
		row = append(row, float64(chunks256))
		tbl.Row(row...)
	}
	tbl.Flush()
	fmt.Println()

	lo, hi := fanins[0], fanins[len(fanins)-1]
	// The acceptance criterion is per 10× of fan-in growth: every step of
	// the sweep must keep the chunked cost within 2×.
	worstStep := 0.0
	for i := 1; i < len(fanins); i++ {
		r := chunkCost[fanins[i]][index.DefaultChunkSize] / chunkCost[fanins[i-1]][index.DefaultChunkSize]
		if r > worstStep {
			worstStep = r
		}
	}
	flatRatio := flatCost[hi] / flatCost[lo]
	verdict(worstStep <= 2,
		fmt.Sprintf("chunked single-op COW cost flat within 2× per 10× fan-in growth (worst step %.2f×)", worstStep))
	overallChunk := chunkCost[hi][index.DefaultChunkSize] / chunkCost[lo][index.DefaultChunkSize]
	verdict(flatRatio > 2*overallChunk,
		fmt.Sprintf("flat baseline grows with the tag (%.1f× over the %.0f× sweep, chunked %.1f×) — chunking removes the O(tag) floor",
			flatRatio, float64(hi)/float64(lo), overallChunk))
	verdict(flatCost[hi] > 2*chunkCost[hi][index.DefaultChunkSize],
		fmt.Sprintf("at fan-in %d the chunked patch beats the flat copy (%.1fµs vs %.1fµs)",
			hi, chunkCost[hi][index.DefaultChunkSize], flatCost[hi]))
	fmt.Println("(a single-op write into a tag of n postings copies O(chunk) with the directory, O(n) flat;")
	fmt.Println(" chunk fences also serve queries as a skip index — see DESIGN.md §3.2.)")
}

// hotDoc builds a document whose root holds fanin same-tag children.
func hotDoc(fanin int) (*document.Doc, error) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < fanin; i++ {
		sb.WriteString("<hot/>")
	}
	sb.WriteString("</r>")
	d, err := document.Parse(strings.NewReader(sb.String()), core.Params{F: 8, S: 2})
	if err != nil {
		return nil, err
	}
	d.TrackChanges()
	return d, nil
}

// runChunkPatch times the chunked index patch over a single-insert
// commit stream and reports trimmed-mean µs per patch plus the hot
// tag's final chunk count.
func runChunkPatch(fanin, chunkSize, commits int) (float64, int, error) {
	d, err := hotDoc(fanin)
	if err != nil {
		return 0, 0, err
	}
	ix := index.BuildSized(d, chunkSize)
	d.TakeChanges()
	rng := rand.New(rand.NewSource(3))
	runtime.GC() // start each cell from a settled heap
	samples := make([]time.Duration, 0, commits)
	for i := 0; i < commits; i++ {
		if _, err := d.InsertElement(d.X.Root, rng.Intn(d.X.Root.NumChildren()+1), "hot"); err != nil {
			return 0, 0, err
		}
		ch := d.TakeChanges()
		start := time.Now()
		next, err := ix.Apply(d, ch)
		samples = append(samples, time.Since(start))
		if err != nil {
			return 0, 0, err
		}
		ix = next
	}
	return trimmedMeanMicros(samples), ix.Chunks("hot"), nil
}

// trimmedMeanMicros returns the 10% trimmed mean in microseconds: the
// plain mean would let one GC pause dominate a cell, while the median
// teeters on bimodal cells (batches with vs. without relabel work split
// near 50/50); trimming the tails keeps both failure modes out.
func trimmedMeanMicros(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	cut := len(samples) / 10
	kept := samples[cut : len(samples)-cut]
	var total time.Duration
	for _, s := range kept {
		total += s
	}
	return float64(total.Nanoseconds()) / float64(len(kept)) / 1e3
}

// runFlatPatch times the PR-1 flat representation on the same stream:
// each commit re-derives the whole hot tag's posting list — drop
// removals, re-read every surviving label, merge the additions.
func runFlatPatch(fanin, commits int) (float64, error) {
	d, err := hotDoc(fanin)
	if err != nil {
		return 0, err
	}
	posts := d.BuildTagIndex()["hot"]
	d.TakeChanges()
	rng := rand.New(rand.NewSource(3))
	runtime.GC() // start each cell from a settled heap
	samples := make([]time.Duration, 0, commits)
	for i := 0; i < commits; i++ {
		if _, err := d.InsertElement(d.X.Root, rng.Intn(d.X.Root.NumChildren()+1), "hot"); err != nil {
			return 0, err
		}
		ch := d.TakeChanges()
		start := time.Now()
		posts, err = flatPatch(d, posts, ch)
		samples = append(samples, time.Since(start))
		if err != nil {
			return 0, err
		}
	}
	return trimmedMeanMicros(samples), nil
}

// flatPatch is the PR-1 per-tag patch, reproduced as the baseline: one
// pass over the old list plus a sorted merge of the additions.
func flatPatch(d *document.Doc, old []document.Entry, ch *document.Changes) ([]document.Entry, error) {
	kept := make([]document.Entry, 0, len(old))
	for _, e := range old {
		if _, gone := ch.Removed[e.Node]; gone {
			continue
		}
		lab, err := d.Label(e.Node)
		if err != nil {
			return nil, err
		}
		e.Label = lab
		kept = append(kept, e)
	}
	var fresh []document.Entry
	for n := range ch.Added {
		if n.Tag() != "hot" {
			continue
		}
		lab, err := d.Label(n)
		if err != nil {
			continue
		}
		fresh = append(fresh, document.Entry{Node: n, Label: lab, Level: n.Level()})
	}
	if len(fresh) == 0 {
		return kept, nil
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Label.Begin < fresh[j].Label.Begin })
	merged := make([]document.Entry, 0, len(kept)+len(fresh))
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if kept[i].Label.Begin < fresh[j].Label.Begin {
			merged = append(merged, kept[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, kept[i:]...)
	return append(merged, fresh[j:]...), nil
}
