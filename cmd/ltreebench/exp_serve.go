package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/workload"
)

// expServe measures the serving story replication over the wire buys: a
// fleet of followers, each attached to the leader through the shipped-op
// wire protocol (ShipServer / RemoteTailSource over an in-process pipe),
// serving reads in parallel vs the single leader store serving everything
// itself. Two questions:
//
//	throughput   aggregate queries/sec of a 1/2/4-follower fleet (one
//	             serving worker per node) against the single-store
//	             baseline — the fan-out win.
//	fan-out cost what each extra follower costs the leader per commit:
//	             bytes shipped down each follower's connection, counted
//	             on the wire. O(batch) per follower, so a fleet costs
//	             N × ~tens of bytes per commit, not N × document.
//
// Correctness rides along: after the commit phase every follower must be
// bit-identical to the leader once it acknowledges the last seq.
func expServe(c config) {
	scale, commits, window := 120, 150, 700*time.Millisecond
	if c.quick {
		scale, commits, window = 15, 40, 150*time.Millisecond
	}
	if c.n > 0 {
		scale = c.n
	}
	x := workload.XMarkLite(scale, 11)
	src := x.String()
	fmt.Printf("xmark-lite scale %d: %d tokens, %d bytes serialized; %d commits, %v per throughput window\n\n",
		scale, x.CountTokens(), len(src), commits, window)

	dir, err := os.MkdirTemp("", "ltreebench-serve-*")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	leader, err := ltree.OpenString(src, ltree.DefaultParams)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w, err := storage.OpenWAL(dir+"/wal", storage.WALOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer w.Close()
	if err := leader.WithWAL(w); err != nil {
		fmt.Println("error:", err)
		return
	}
	srv, err := storage.NewShipServer(w)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer srv.Close()

	// The fleet: four followers, each over its own counted pipe. The
	// counter sees every byte the server sends this follower — catch-up
	// pages, live records, notifies — so bytes/commit is the true
	// per-follower fan-out cost of the wire, not just payload.
	const fleetMax = 4
	followers := make([]*ltree.Follower, 0, fleetMax)
	counters := make([]*atomic.Int64, 0, fleetMax)
	for i := 0; i < fleetMax; i++ {
		n := &atomic.Int64{}
		dial := func() (net.Conn, error) {
			c1, c2 := net.Pipe()
			go srv.ServeConn(c2)
			return countedConn{Conn: c1, n: n}, nil
		}
		rsrc, err := storage.OpenRemoteTail(dial, storage.RemoteOptions{})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		defer rsrc.Close()
		f, err := ltree.OpenFollower(rsrc)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		defer f.Close()
		followers = append(followers, f)
		counters = append(counters, n)
	}

	// ---- fan-out cost: commits fanned to 4 live followers ----
	parent := leader.Elements("asia")[0]
	for _, f := range followers {
		if err := f.WaitFor(w.Seq(), 30*time.Second); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	base := make([]int64, fleetMax)
	for i, n := range counters {
		base[i] = n.Load()
	}
	for i := 0; i < commits; i++ {
		if err := leader.Update(func(tx *ltree.Batch) error {
			_, err := tx.InsertXML(parent, 0, `<item><name>fresh</name></item>`)
			return err
		}); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	for _, f := range followers {
		if err := f.WaitFor(w.Seq(), 30*time.Second); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	var perFollower float64
	for i, n := range counters {
		perFollower += float64(n.Load()-base[i]) / float64(commits)
	}
	perFollower /= fleetMax
	fmt.Printf("fan-out: %.0f wire bytes/commit per follower (%d commits × %d live followers)\n\n",
		perFollower, commits, fleetMax)

	// ---- throughput: single store vs follower fleets ----
	query := func(reader interface {
		Query(string) ([]*ltree.Elem, error)
	}) error {
		res, err := reader.Query("//item/name")
		if err == nil && len(res) == 0 {
			err = fmt.Errorf("empty result")
		}
		return err
	}
	measure := func(nodes []interface {
		Query(string) ([]*ltree.Elem, error)
	}) float64 {
		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd interface {
				Query(string) ([]*ltree.Elem, error)
			}) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := query(nd); err != nil {
						fmt.Println("error:", err)
						return
					}
					total.Add(1)
				}
			}(nd)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return float64(total.Load()) / window.Seconds()
	}

	single := measure([]interface {
		Query(string) ([]*ltree.Elem, error)
	}{leader})

	tbl := stats.NewTable(os.Stdout, "serving configuration", "queries/sec", "vs single store")
	tbl.Row("single store, 1 worker", single, 1.0)
	var fleet4 float64
	for _, size := range []int{1, 2, 4} {
		nodes := make([]interface {
			Query(string) ([]*ltree.Elem, error)
		}, size)
		for i := 0; i < size; i++ {
			nodes[i] = followers[i]
		}
		qps := measure(nodes)
		if size == 4 {
			fleet4 = qps
		}
		tbl.Row(fmt.Sprintf("%d-follower fleet", size), qps, qps/single)
	}
	tbl.Flush()
	fmt.Println()

	// ---- correctness + verdicts ----
	var live bytes.Buffer
	if err := leader.Snapshot(&live); err != nil {
		fmt.Println("error:", err)
		return
	}
	identical := true
	for _, f := range followers {
		var replica bytes.Buffer
		if err := f.Snapshot(&replica); err != nil || !bytes.Equal(live.Bytes(), replica.Bytes()) || f.Check() != nil {
			identical = false
		}
	}
	verdict(identical, "every acknowledged follower is bit-identical to the leader after the commit fan-out")
	verdict(perFollower < 4096,
		fmt.Sprintf("per-follower wire cost is O(batch): %.0f B/commit, not O(document) (%d B)", perFollower, len(src)))
	if runtime.NumCPU() >= 2 {
		verdict(fleet4 >= 2*single,
			fmt.Sprintf("4-follower fleet serves ≥2× a single store (%.0f vs %.0f q/s, %.1f×)", fleet4, single, fleet4/single))
	} else {
		fmt.Println("(1 CPU: fleet-vs-single speedup not asserted — parallel serving needs cores)")
	}
}

// countedConn counts bytes the client reads off the wire (everything the
// server ships this follower).
type countedConn struct {
	net.Conn
	n *atomic.Int64
}

func (c countedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}
