package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/pagesim"
	"github.com/ltree-db/ltree/internal/stats"
	"github.com/ltree-db/ltree/internal/workload"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// expDisk converts the paper's cost unit into simulated disk accesses:
// element rows live tag-clustered on pages behind an LRU buffer pool
// (§3.1's storage assumption), every relabeled row is a page write, and
// the experiment compares L-Tree maintenance against sequential
// (relabel-the-suffix) labeling on identical insertion streams across
// pool sizes.
func expDisk(c config) {
	elements := 4_000
	updates := 800
	if c.quick {
		elements, updates = 1_000, 300
	}
	if c.n > 0 {
		elements = c.n
	}
	fmt.Printf("%d-element document, %d element insertions, tag-clustered rows, 512-byte pages\n\n",
		elements, updates)
	tbl := stats.NewTable(os.Stdout, "labeling", "pool pages", "page writes/update", "disk ops/update", "hit rate")
	type result struct{ diskOps float64 }
	results := map[string]result{}
	pools := []int{16, 64, 1024}
	for _, pool := range pools {
		for _, scheme := range []string{"ltree", "sequential"} {
			writes, diskOps, hit := runDisk(scheme, elements, updates, pool)
			tbl.Row(scheme, pool, writes, diskOps, hit)
			results[fmt.Sprintf("%s/%d", scheme, pool)] = result{diskOps}
		}
	}
	tbl.Flush()
	fmt.Println()
	verdict(results["ltree/16"].diskOps < results["sequential/16"].diskOps/4,
		"with a pool smaller than the document, L-Tree maintenance costs several times fewer disk accesses")
	verdict(results["ltree/16"].diskOps >= results["ltree/1024"].diskOps,
		"larger buffer pools absorb more of the relabeling traffic (sanity)")
	fmt.Println("(once the pool holds the whole working set both schemes converge to cold faults —")
	fmt.Println(" the paper's disk-cost argument concerns documents larger than memory)")
}

// runDisk replays the same insertion stream under one labeling policy and
// returns page writes per update, disk ops per update, and hit rate.
func runDisk(scheme string, elements, updates, poolPages int) (writesPerUpdate, diskOpsPerUpdate, hitRate float64) {
	x := workload.GenerateDoc(workload.DocConfig{
		Elements: elements, MaxDepth: 9, MaxFanout: 8, TextProb: 0,
	}, 31)
	d, err := document.Load(x, core.Params{F: 8, S: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	store := pagesim.NewTagStore(pagesim.Config{PoolPages: poolPages, PageSize: 512})
	refs := map[*xmldom.Node]pagesim.RowRef{}
	last := map[*xmldom.Node]document.Label{}
	var order []*xmldom.Node
	for _, el := range d.Elements("*") {
		refs[el] = store.Place(el.Tag())
		lab, _ := d.Label(el)
		last[el] = lab
		order = append(order, el)
	}
	store.Pool().ResetStats()

	rng := rand.New(rand.NewSource(17))
	pageWrites := uint64(0)
	for u := 0; u < updates; u++ {
		parent := order[rng.Intn(len(order))]
		idx := rng.Intn(parent.NumChildren() + 1)
		el, err := d.InsertElement(parent, idx, parent.Tag())
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		refs[el] = store.Place(el.Tag())
		lab, _ := d.Label(el)
		last[el] = lab
		order = append(order, el)

		switch scheme {
		case "ltree":
			// Touch exactly the rows whose labels the L-Tree moved.
			for _, n := range order {
				cur, err := d.Label(n)
				if err != nil {
					continue
				}
				if cur != last[n] {
					store.Touch(refs[n], true)
					pageWrites++
					last[n] = cur
				}
			}
		case "sequential":
			// Dense labels: every element at or after the insertion point
			// is renumbered — touch the whole suffix in document order.
			newLab := lab
			for _, n := range order {
				cur, err := d.Label(n)
				if err != nil || n == el {
					continue
				}
				if cur.Begin >= newLab.Begin {
					store.Touch(refs[n], true)
					pageWrites++
				}
				last[n] = cur
			}
		}
	}
	store.Pool().Flush()
	st := store.Pool().Stats()
	return float64(pageWrites) / float64(updates),
		float64(st.DiskOps()) / float64(updates),
		st.HitRate()
}
