// Command lttune is the §3.2 tuning calculator: given an expected
// document size and optional constraints, it prints the recommended
// L-Tree parameters under all three of the paper's optimization models
// and, with -verify, measures the recommendation empirically.
//
// Usage:
//
//	lttune -n 1000000
//	lttune -n 1000000 -bits 32
//	lttune -n 1000000 -queryfrac 0.9 -word 32
//	lttune -n 100000 -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/core"
	"github.com/ltree-db/ltree/internal/workload"
)

func main() {
	n := flag.Int("n", 1_000_000, "expected number of tags (2× elements)")
	bits := flag.Int("bits", 0, "label bit budget (0 = unconstrained)")
	queryFrac := flag.Float64("queryfrac", -1, "query fraction for the mixed model (-1 = skip)")
	word := flag.Int("word", 64, "machine word size in bits for the mixed model")
	verify := flag.Bool("verify", false, "measure the recommendation on a synthetic run")
	flag.Parse()

	fmt.Printf("document size n = %d tags\n\n", *n)

	s := ltree.SuggestParams(*n)
	fmt.Printf("model 1 (min update cost):        f=%-3d s=%-2d  predicted cost %.1f, %0.f bits/label\n",
		s.Params.F, s.Params.S, s.Cost, s.Bits)

	if *bits > 0 {
		c, err := ltree.SuggestParamsUnderBits(*n, *bits)
		if err != nil {
			fmt.Printf("model 2 (≤ %d bits):             infeasible: %v\n", *bits, err)
		} else {
			fmt.Printf("model 2 (≤ %d bits):             f=%-3d s=%-2d  predicted cost %.1f, %.0f bits/label\n",
				*bits, c.Params.F, c.Params.S, c.Cost, c.Bits)
			s = c // verify the constrained choice if asked
		}
	}
	if *queryFrac >= 0 {
		c := ltree.SuggestParamsMixed(*n, *queryFrac, *word)
		fmt.Printf("model 3 (q=%.2f, %d-bit word):   f=%-3d s=%-2d  predicted cost %.1f, %.0f bits/label\n",
			*queryFrac, *word, c.Params.F, c.Params.S, c.Cost, c.Bits)
	}

	if !*verify {
		return
	}
	fmt.Printf("\nverifying f=%d s=%d on a synthetic run ...\n", s.Params.F, s.Params.S)
	size := *n / 2
	if size > 500_000 {
		size = 500_000
		fmt.Printf("(capped at %d loads + %d inserts)\n", size, size)
	}
	tr, err := core.New(core.Params{F: s.Params.F, S: s.Params.S})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lttune:", err)
		os.Exit(1)
	}
	if _, err := tr.Load(size); err != nil {
		fmt.Fprintln(os.Stderr, "lttune:", err)
		os.Exit(1)
	}
	pos := workload.NewPositions(workload.Uniform, 1)
	for i := 0; i < size; i++ {
		at := pos.Next(tr.Len())
		if at == 0 {
			_, err = tr.InsertFirst()
		} else {
			_, err = tr.InsertAfter(tr.LeafAt(at - 1))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lttune:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("measured: %.2f nodes touched/insert (bound %.1f), %d bits/label (predicted %.0f)\n",
		tr.Stats().AmortizedCost(), ltree.PredictCost(s.Params, 2*size),
		tr.BitsPerLabel(), ltree.PredictBits(s.Params, 2*size))
}
