package ltree_test

import (
	"errors"
	"testing"

	ltree "github.com/ltree-db/ltree"
	"github.com/ltree-db/ltree/internal/storage"
)

// TestStoreDetectsDivergentApply injects a divergent batch — a shipped
// payload whose trailing root-hash stamp no longer matches the index
// content it produces — and checks that every apply seam refuses it
// with ErrReplicaDiverged: WAL replay on LoadLatest, and a follower
// tailing the log. The stamp is the last op of each payload and its 32
// raw bytes end the frame, so flipping the payload's final byte forges
// a leader whose index content disagrees with the replica's recompute;
// AppendBatch re-frames with fresh CRCs, so nothing else rejects it
// first.
func TestStoreDetectsDivergentApply(t *testing.T) {
	// Leader A: seed plus one committed batch; capture the shipped
	// payload.
	stA, wA := openLeader(t, t.TempDir())
	if err := stA.Update(func(b *ltree.Batch) error {
		_, err := b.InsertXML(stA.Elements("people")[0], 0, "<person>carol</person>")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := wA.Sync(); err != nil {
		t.Fatal(err)
	}
	var payload []byte
	if err := wA.ReplaySince(0, func(seq uint64, p []byte) error {
		payload = append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Fatal("no payload captured from leader WAL")
	}
	if err := wA.Close(); err != nil {
		t.Fatal(err)
	}

	// seedWAL builds a fresh identically-seeded WAL directory and
	// appends one payload behind the store's back.
	seedWAL := func(p []byte) string {
		dir := t.TempDir()
		_, w := openLeader(t, dir)
		if _, err := w.AppendBatch(p); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Control: the untampered payload replays cleanly and reproduces
	// leader A's exact index content.
	clean := seedWAL(payload)
	wClean, err := storage.OpenWAL(clean, storage.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer wClean.Close()
	stClean, err := ltree.LoadLatest(wClean)
	if err != nil {
		t.Fatalf("control replay: %v", err)
	}
	if stClean.RootHash() != stA.RootHash() {
		t.Fatalf("control replay root %x != leader root %x", stClean.RootHash(), stA.RootHash())
	}

	// Tamper: flip the last byte — the tail of the payload's 32-byte
	// root stamp.
	tampered := append([]byte(nil), payload...)
	tampered[len(tampered)-1] ^= 0xff

	t.Run("replay", func(t *testing.T) {
		dir := seedWAL(tampered)
		w, err := storage.OpenWAL(dir, storage.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		if _, err := ltree.LoadLatest(w); !errors.Is(err, ltree.ErrReplicaDiverged) {
			t.Fatalf("replaying a divergent stamp: got %v, want ErrReplicaDiverged", err)
		}
	})

	t.Run("follower", func(t *testing.T) {
		dir := seedWAL(tampered)
		w, err := storage.OpenWAL(dir, storage.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		f, err := ltree.OpenFollower(w)
		if err == nil {
			defer f.Close()
			err = f.WaitFor(w.Seq(), waitTimeout)
		}
		if !errors.Is(err, ltree.ErrReplicaDiverged) {
			t.Fatalf("follower applying a divergent stamp: got %v, want ErrReplicaDiverged", err)
		}
	})
}
