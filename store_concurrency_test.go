package ltree

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ltree-db/ltree/internal/storage"
	"github.com/ltree-db/ltree/internal/workload"
)

// TestStoreConcurrentMixedWorkload floods the store with parallel readers
// while writers insert, delete and move subtrees. Run under -race this
// proves the read path never touches writer-owned state: queries consume
// only the published copy-on-write index version plus read-locked label
// state, and never rebuild anything.
func TestStoreConcurrentMixedWorkload(t *testing.T) {
	x := workload.XMarkLite(10, 1)
	st, err := OpenString(x.String(), DefaultParams)
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers  = 8
		writers  = 2
		duration = 300 * time.Millisecond
	)
	var (
		stop    atomic.Bool
		queries atomic.Int64
		commits atomic.Int64
		wg      sync.WaitGroup
	)
	exprs := []string{"//item/name", "//site//name", "//*", "/site//item", "//keyword"}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				switch rng.Intn(4) {
				case 0:
					if _, err := st.Query(exprs[rng.Intn(len(exprs))]); err != nil {
						t.Error(err)
						return
					}
				case 1:
					els := st.Elements("item")
					if len(els) > 1 {
						a, b := els[rng.Intn(len(els))], els[rng.Intn(len(els))]
						// ErrUnbound: the lock-free Elements snapshot can
						// name a node a writer deleted before our RLock.
						if _, err := st.Compare(a, b); err != nil && err != ErrUnbound {
							t.Error(err)
							return
						}
					}
				case 2:
					els := st.Elements("*")
					if len(els) > 1 {
						if _, err := st.IsAncestor(els[0], els[rng.Intn(len(els))]); err != nil && err != ErrUnbound {
							t.Error(err)
							return
						}
					}
				default:
					els := st.Elements("name")
					if len(els) > 0 {
						if _, err := st.Label(els[rng.Intn(len(els))]); err != nil && err != ErrUnbound {
							t.Error(err)
							return
						}
					}
				}
				queries.Add(1)
			}
		}(int64(r))
	}

	// Regions are stable anchors: writers only ever insert, delete and
	// move items below them, so the region nodes themselves stay bound.
	regions := st.Elements("asia")
	regions = append(regions, st.Elements("europe")...)
	regions = append(regions, st.Elements("africa")...)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for !stop.Load() {
				// Elements is lock-free over the published index, so the
				// picked node can be deleted by the other writer before we
				// lock; the document layer reports ErrUnbound, which is fine.
				region := regions[rng.Intn(len(regions))]
				var err error
				switch op := rng.Intn(4); {
				case op == 0:
					_, err = st.InsertXML(region, 0, `<item><name>fresh</name></item>`)
				case op == 1:
					_, err = st.InsertXML(region, 0, `<bundle><keyword>k</keyword></bundle>`)
				default:
					els := st.Elements("item")
					if len(els) == 0 {
						continue
					}
					n := els[rng.Intn(len(els))]
					if op == 2 {
						err = st.Delete(n)
					} else {
						err = st.Move(n, region, 0)
					}
				}
				if err != nil && err != ErrUnbound && err != ErrRootEdit {
					// Racing picks can also surface cycles or stale slots.
					continue
				}
				commits.Add(1)
			}
		}(int64(w))
	}

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if queries.Load() == 0 || commits.Load() == 0 {
		t.Fatalf("workload did not exercise both paths: %d queries, %d commits", queries.Load(), commits.Load())
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d queries, %d commits, index version %d", queries.Load(), commits.Load(), st.IndexVersion())
}

// TestStoreReadersNotSerialized pins the structural claim behind the
// refactor: a reader inside Query cannot block another reader. Both
// readers park inside the read-locked section at the same time; with the
// seed's exclusive-lock query path this deadlocks (the second reader
// would wait for the first), so a timeout here is a regression.
func TestStoreReadersNotSerialized(t *testing.T) {
	st, err := OpenString(`<r><a/><b/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	var inside sync.WaitGroup
	inside.Add(2)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			// Two concurrent RLock holders: if Query took the write lock,
			// the second Add would never be reached before the first
			// releases, and with both gated on the barrier we deadlock.
			st.mu.RLock()
			inside.Done()
			inside.Wait()
			st.mu.RUnlock()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("readers serialized each other")
		}
	}
}

// TestStoreUpdateBatch: one Update publishes exactly one index version no
// matter how many mutations it contains, and queries observe the whole
// batch at once afterwards.
func TestStoreUpdateBatch(t *testing.T) {
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	v0 := st.IndexVersion()
	err = st.Update(func(tx *Batch) error {
		a := st.Root().Child(0)
		for i := 0; i < 10; i++ {
			if _, err := tx.InsertElement(a, i, "x"); err != nil {
				return err
			}
		}
		if _, err := tx.InsertXML(a, 0, `<y><z/></y>`); err != nil {
			return err
		}
		return tx.Delete(a.Child(1)) // the first x, now behind the y
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.IndexVersion(); got != v0+1 {
		t.Fatalf("batch published %d versions, want 1", got-v0)
	}
	if got, _ := st.Query("//x"); len(got) != 9 {
		t.Fatalf("//x = %d, want 9", len(got))
	}
	if got, _ := st.Query("//y/z"); len(got) != 1 {
		t.Fatalf("//y/z = %d, want 1", len(got))
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIncrementalIndex: single-element writes bump the version by
// one and keep the index exact without a rebuild on the query path.
func TestStoreIncrementalIndex(t *testing.T) {
	x := workload.XMarkLite(5, 2)
	st, err := OpenString(x.String(), DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	items := st.Elements("item")
	before := len(items)
	v := st.IndexVersion()
	for i := 0; i < 50; i++ {
		if _, err := st.InsertElement(items[i%len(items)], 0, "name"); err != nil {
			t.Fatal(err)
		}
		if st.IndexVersion() != v+uint64(i)+1 {
			t.Fatalf("write %d did not publish exactly one version", i)
		}
		if err := st.Check(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := len(st.Elements("item")); got != before {
		t.Fatalf("item count drifted: %d, want %d", got, before)
	}
}

// TestStoreVersionedBackend round-trips through the memory and file
// backends and rolls back to an earlier version.
func TestStoreVersionedBackend(t *testing.T) {
	for name, b := range storageBackends(t) {
		t.Run(name, func(t *testing.T) {
			st, err := OpenString(`<r><a/></r>`, DefaultParams)
			if err != nil {
				t.Fatal(err)
			}
			v1, err := st.SaveVersion(b)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.InsertElement(st.Root(), 0, "later"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.SaveVersion(b); err != nil {
				t.Fatal(err)
			}

			latest, err := LoadLatest(b)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := latest.Query("//later"); len(got) != 1 {
				t.Fatal("latest version missing the second write")
			}
			old, err := LoadVersion(b, v1)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := old.Query("//later"); len(got) != 0 {
				t.Fatal("rollback version leaked the second write")
			}
			if err := old.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreRefresh: direct Document mutations resync via Refresh.
func TestStoreRefresh(t *testing.T) {
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Document().InsertElement(st.Root(), 0, "direct"); err != nil {
		t.Fatal(err)
	}
	st.Refresh()
	if got, _ := st.Query("//direct"); len(got) != 1 {
		t.Fatal("Refresh did not fold direct document edits into the index")
	}
	if err := st.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSnapshotV1Era: a store restored from bytes written by this
// version can itself restore bytes written long ago (the v1 fixture is
// exercised at the document layer; here we check the facade round trip
// stays self-consistent across formats).
func TestStoreSnapshotFormatStability(t *testing.T) {
	st, err := OpenString(`<r><a>t</a></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := st.Snapshot(&first); err != nil {
		t.Fatal(err)
	}
	st2, err := Restore(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := st2.Snapshot(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("snapshot bytes not stable across a restore cycle")
	}
}

// storageBackends returns one of each backend flavor for facade tests.
func storageBackends(t *testing.T) map[string]storage.Backend {
	t.Helper()
	file, err := storage.NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]storage.Backend{"memory": storage.NewMemory(), "file": file}
}
