package ltree_test

import (
	"errors"
	"testing"
	"time"

	ltree "github.com/ltree-db/ltree"
)

// recvEvent receives one WatchEvent or fails after the shared test
// timeout. ok is false if C closed instead.
func recvEvent(t *testing.T, w *ltree.Watcher) (ltree.WatchEvent, bool) {
	t.Helper()
	select {
	case ev, ok := <-w.C:
		return ev, ok
	case <-time.After(waitTimeout):
		t.Fatal("no watch event within timeout")
		return ltree.WatchEvent{}, false
	}
}

func insertUnder(t *testing.T, st *ltree.Store, parentTag, fragment string) {
	t.Helper()
	err := st.Update(func(b *ltree.Batch) error {
		_, err := b.InsertXML(st.Elements(parentTag)[0], 0, fragment)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWatchDeliversCommits checks the basic feed contract: every commit
// produces an event whose endpoints chain gap-free and whose Root is
// the content hash of the delivered version.
func TestWatchDeliversCommits(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Watch(ltree.WatchOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	v0 := st.IndexVersion()

	insertUnder(t, st, "people", "<person>carol</person>")
	ev, ok := recvEvent(t, w)
	if !ok {
		t.Fatalf("feed closed early: %v", w.Err())
	}
	if ev.From != v0 {
		t.Fatalf("first event From=%d, want %d", ev.From, v0)
	}
	if ev.Root != ev.Changes.ToRoot {
		t.Fatalf("event Root %x != change set ToRoot %x", ev.Root, ev.Changes.ToRoot)
	}
	added := false
	for _, c := range ev.Changes.Changes {
		if c.Kind == ltree.ChangeAdded && c.Tag == "person" {
			added = true
		}
	}
	if !added {
		t.Fatalf("event lacks the added <person>: %+v", ev.Changes.Changes)
	}

	insertUnder(t, st, "people", "<person>dave</person>")
	ev2, ok := recvEvent(t, w)
	if !ok {
		t.Fatalf("feed closed early: %v", w.Err())
	}
	if ev2.From != ev.To {
		t.Fatalf("events do not chain: first To=%d, second From=%d", ev.To, ev2.From)
	}
	if ev2.To != st.IndexVersion() || ev2.Root != st.RootHash() {
		t.Fatalf("second event To=%d Root=%x, store at %d %x", ev2.To, ev2.Root, st.IndexVersion(), st.RootHash())
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-w.C; ok {
		t.Fatal("C still open after Close")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("Err after clean Close: %v", err)
	}
}

// TestWatchSince checks the backfill contract: a non-zero Since starts
// the feed at a still-pinned older version, with the first event
// covering Since → current; a retired Since is refused up front.
func TestWatchSince(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	pin := st.SnapshotView()
	defer pin.Close()
	v0 := pin.Version()
	for i := 0; i < 3; i++ {
		insertUnder(t, st, "people", "<person>p</person>")
	}

	w, err := st.Watch(ltree.WatchOptions{Since: v0, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev, ok := recvEvent(t, w)
	if !ok {
		t.Fatalf("feed closed early: %v", w.Err())
	}
	if ev.From != v0 || ev.To != st.IndexVersion() {
		t.Fatalf("backfill event %d→%d, want %d→%d", ev.From, ev.To, v0, st.IndexVersion())
	}
	if got := len(ev.Changes.Changes); got < 3 {
		t.Fatalf("backfill event carries %d changes, want >= 3", got)
	}

	// Retire v0 (drop its only pin, then move the store past it): Watch
	// must now refuse the cursor instead of silently skipping history.
	pin.Close()
	insertUnder(t, st, "people", "<person>q</person>")
	if _, err := st.Watch(ltree.WatchOptions{Since: v0}); !errors.Is(err, ltree.ErrVersionRetired) {
		t.Fatalf("watch since retired version: got %v, want ErrVersionRetired", err)
	}
}

// TestWatchPathScope checks subtree scoping: commits outside the scoped
// family are suppressed entirely, and delivered events carry only
// in-scope changes.
func TestWatchPathScope(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Watch(ltree.WatchOptions{Path: "//people", Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Out of scope, then in scope. The watcher may see them as one
	// coalesced diff or two — either way the out-of-scope change must
	// never surface. The <extra/> is appended after <people> so its
	// labels come from the trailing gap: an insert that relabeled the
	// scoped subtree would itself be in scope.
	err = st.Update(func(b *ltree.Batch) error {
		site := st.Elements("site")[0]
		_, err := b.InsertXML(site, site.NumChildren(), "<extra/>")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	insertUnder(t, st, "people", "<person>carol</person>")

	ev, ok := recvEvent(t, w)
	if !ok {
		t.Fatalf("feed closed early: %v", w.Err())
	}
	if ev.To != st.IndexVersion() {
		// The two commits arrived as separate diffs; the first must
		// have been suppressed, so this event is the second.
		t.Fatalf("scoped event To=%d, store at %d", ev.To, st.IndexVersion())
	}
	sawPerson := false
	for _, c := range ev.Changes.Changes {
		if c.Tag == "extra" {
			t.Fatalf("out-of-scope change delivered: %+v", c)
		}
		if c.Kind == ltree.ChangeAdded && c.Tag == "person" {
			sawPerson = true
		}
	}
	if !sawPerson {
		t.Fatalf("in-scope added <person> missing: %+v", ev.Changes.Changes)
	}
}

// TestWatchCoalesces checks the slow-consumer contract: an unbuffered
// watcher left unread across a burst of commits receives fewer, wider
// events — chained gap-free from the subscription version to the final
// one, never a queue and never a hole.
func TestWatchCoalesces(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Watch(ltree.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	v0 := st.IndexVersion()

	const commits = 6
	for i := 0; i < commits; i++ {
		insertUnder(t, st, "people", "<person>p</person>")
	}
	final := st.IndexVersion()

	events := 0
	cursor := v0
	for cursor != final {
		ev, ok := recvEvent(t, w)
		if !ok {
			t.Fatalf("feed closed at cursor %d: %v", cursor, w.Err())
		}
		if ev.From != cursor {
			t.Fatalf("gap: event From=%d, cursor %d", ev.From, cursor)
		}
		if ev.To <= ev.From {
			t.Fatalf("event does not advance: %d→%d", ev.From, ev.To)
		}
		cursor = ev.To
		events++
	}
	if events > commits {
		t.Fatalf("%d events for %d commits — feed queued instead of coalescing", events, commits)
	}
}
