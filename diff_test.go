package ltree_test

import (
	"errors"
	"math/rand"
	"testing"

	ltree "github.com/ltree-db/ltree"
)

// This file pins DiffVersions against a provider that cannot be wrong:
// a full-fingerprint oracle that scans every entry of both versions and
// takes a multiset difference. The diff walks only unequal-hash
// subtrees; the oracle walks everything — if they ever disagree on the
// net content change, the pruning dropped or invented something.

// diffKey is the content identity of one index entry — what both the
// diff and the oracle ultimately compare.
type diffKey struct {
	tag        string
	begin, end uint64
	level      int
}

// canonChanges flattens a ChangeSet to net (removed, added) multisets
// over entry content. A relabel contributes to both sides, and pairs
// meeting at the same content key cancel: two relabels can hand a label
// position from one node to another, which the node-blind oracle sees
// as no content change at all.
func canonChanges(cs *ltree.ChangeSet) (rem, add map[diffKey]int) {
	rem, add = map[diffKey]int{}, map[diffKey]int{}
	for _, c := range cs.Changes {
		if c.Kind == ltree.ChangeRemoved || c.Kind == ltree.ChangeRelabeled {
			rem[diffKey{c.Tag, c.Old.Begin, c.Old.End, c.OldLevel}]++
		}
		if c.Kind == ltree.ChangeAdded || c.Kind == ltree.ChangeRelabeled {
			add[diffKey{c.Tag, c.New.Begin, c.New.End, c.Level}]++
		}
	}
	for k, r := range rem {
		a := add[k]
		if a == 0 {
			continue
		}
		m := min(r, a)
		if rem[k] -= m; rem[k] == 0 {
			delete(rem, k)
		}
		if add[k] -= m; add[k] == 0 {
			delete(add, k)
		}
	}
	return rem, add
}

// fingerprintAt scans one pinned version's entire index content.
func fingerprintAt(t *testing.T, r ltree.Reader, v uint64) map[diffKey]int {
	t.Helper()
	tx, err := r.SnapshotAt(v)
	if err != nil {
		t.Fatalf("snapshot at %d: %v", v, err)
	}
	defer tx.Close()
	fp := map[diffKey]int{}
	for _, e := range tx.Elements("*") {
		lab, err := tx.Label(e)
		if err != nil {
			t.Fatalf("label at %d: %v", v, err)
		}
		// tx.Level, not e.Level(): the entry's depth as of the pinned
		// version, not the node's live depth after later moves.
		lvl, err := tx.Level(e)
		if err != nil {
			t.Fatalf("level at %d: %v", v, err)
		}
		fp[diffKey{e.Tag(), lab.Begin, lab.End, lvl}]++
	}
	return fp
}

// oracleDiff is the full-scan baseline: fingerprint both versions, then
// multiset-subtract.
func oracleDiff(t *testing.T, r ltree.Reader, va, vb uint64) (rem, add map[diffKey]int) {
	t.Helper()
	fa, fb := fingerprintAt(t, r, va), fingerprintAt(t, r, vb)
	rem, add = map[diffKey]int{}, map[diffKey]int{}
	for k, n := range fa {
		if d := n - fb[k]; d > 0 {
			rem[k] = d
		}
	}
	for k, n := range fb {
		if d := n - fa[k]; d > 0 {
			add[k] = d
		}
	}
	return rem, add
}

func diffMapsEqual(a, b map[diffKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// checkDiffAgainstOracle diffs every sampled version pair two ways and
// requires identical net content change. diff is DiffVersions on the
// provider under test; the oracle reads through the same provider.
func checkDiffAgainstOracle(t *testing.T, r ltree.Reader, diff func(a, b uint64) (*ltree.ChangeSet, error), versions []uint64, rng *rand.Rand) {
	t.Helper()
	pairs := [][2]uint64{{versions[0], versions[len(versions)-1]}}
	for i := 1; i < len(versions); i++ { // every adjacent pair
		pairs = append(pairs, [2]uint64{versions[i-1], versions[i]})
	}
	for extra := 0; extra < 8; extra++ { // plus random wide ones
		i := rng.Intn(len(versions) - 1)
		j := i + 1 + rng.Intn(len(versions)-i-1)
		pairs = append(pairs, [2]uint64{versions[i], versions[j]})
	}
	for _, p := range pairs {
		cs, err := diff(p[0], p[1])
		if err != nil {
			t.Fatalf("diff %d→%d: %v", p[0], p[1], err)
		}
		if cs.From != p[0] || cs.To != p[1] {
			t.Fatalf("diff %d→%d reported endpoints %d→%d", p[0], p[1], cs.From, cs.To)
		}
		rem, add := canonChanges(cs)
		orem, oadd := oracleDiff(t, r, p[0], p[1])
		if !diffMapsEqual(rem, orem) || !diffMapsEqual(add, oadd) {
			t.Errorf("diff %d→%d: net change %d-/%d+ disagrees with full-fingerprint oracle %d-/%d+",
				p[0], p[1], len(rem), len(add), len(orem), len(oadd))
		}
		if cs.Stats.Changes != len(cs.Changes) {
			t.Errorf("diff %d→%d: Stats.Changes=%d but %d changes", p[0], p[1], cs.Stats.Changes, len(cs.Changes))
		}
	}
}

// TestDiffVersionsDifferentialProperty drives a random batched history
// and pins DiffVersions to the full-fingerprint oracle on every
// adjacent version pair plus sampled wide ones — first on a leader,
// then on a log-shipped follower whose versions were produced by the
// apply path rather than live commits.
func TestDiffVersionsDifferentialProperty(t *testing.T) {
	const batches = 18

	t.Run("leader", func(t *testing.T) {
		st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		// Hold a pin on every intermediate version so the pairs stay
		// diffable after later writes retire them.
		var held []*ltree.Txn
		defer func() {
			for _, h := range held {
				h.Close()
			}
		}()
		pin := func() uint64 {
			h := st.SnapshotView()
			held = append(held, h)
			return h.Version()
		}
		versions := []uint64{pin()}
		for i := 0; i < batches; i++ {
			applyBatch(t, st, planBatch(rng, len(st.Elements("*"))))
			versions = append(versions, pin())
		}
		checkDiffAgainstOracle(t, st, st.DiffVersions, versions, rng)
	})

	t.Run("follower", func(t *testing.T) {
		st, w := openLeader(t, t.TempDir())
		f, err := ltree.OpenFollower(w)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rng := rand.New(rand.NewSource(11))
		var held []*ltree.Txn
		defer func() {
			for _, h := range held {
				h.Close()
			}
		}()
		// Commit on the leader, wait for the follower to ack, pin the
		// follower's applied version: the diffed history is the one the
		// apply seam built, not the one the commits built.
		pin := func() uint64 {
			if err := f.WaitFor(w.Seq(), waitTimeout); err != nil {
				t.Fatalf("waitfor: %v", err)
			}
			h := f.SnapshotView()
			held = append(held, h)
			return h.Version()
		}
		versions := []uint64{pin()}
		for i := 0; i < batches; i++ {
			applyBatch(t, st, planBatch(rng, len(st.Elements("*"))))
			versions = append(versions, pin())
		}
		if lr, fr := st.RootHash(), f.RootHash(); lr != fr {
			t.Fatalf("leader root %x != follower root %x", lr, fr)
		}
		checkDiffAgainstOracle(t, f, f.DiffVersions, versions, rng)
	})
}

// TestDiffVersionsEndpoints covers the version-addressing contract:
// identity diffs, argument order, and retired versions.
func TestDiffVersionsEndpoints(t *testing.T) {
	st, err := ltree.OpenString(replaySeedDoc, ltree.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	v0 := st.IndexVersion()

	cs, err := st.DiffVersions(v0, v0)
	if err != nil {
		t.Fatalf("identity diff: %v", err)
	}
	if len(cs.Changes) != 0 || cs.FromRoot != cs.ToRoot {
		t.Fatalf("identity diff reported %d changes, roots %x vs %x", len(cs.Changes), cs.FromRoot, cs.ToRoot)
	}
	if cs.FromRoot != st.RootHash() {
		t.Fatalf("diff root %x != store root %x", cs.FromRoot, st.RootHash())
	}

	pin := st.SnapshotView()
	defer pin.Close()
	if err := st.Update(func(b *ltree.Batch) error {
		_, err := b.InsertXML(st.Elements("people")[0], 0, "<person>carol</person>")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	v1 := st.IndexVersion()

	fwd, err := st.DiffVersions(v0, v1)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := st.DiffVersions(v1, v0)
	if err != nil {
		t.Fatal(err)
	}
	// Either argument order orients the set oldest → newest.
	if fwd.From != rev.From || fwd.To != rev.To || len(fwd.Changes) != len(rev.Changes) {
		t.Fatalf("argument order changed the diff: %d→%d (%d) vs %d→%d (%d)",
			fwd.From, fwd.To, len(fwd.Changes), rev.From, rev.To, len(rev.Changes))
	}
	if fwd.ToRoot != st.RootHash() {
		t.Fatalf("diff ToRoot %x != current root %x", fwd.ToRoot, st.RootHash())
	}

	// Release the only pin on v0 and retire it with another commit: the
	// diff must now refuse the unreachable endpoint.
	pin.Close()
	if err := st.Update(func(b *ltree.Batch) error {
		_, err := b.InsertXML(st.Elements("people")[0], 0, "<person>dave</person>")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.DiffVersions(v0, st.IndexVersion()); !errors.Is(err, ltree.ErrVersionRetired) {
		t.Fatalf("diff against retired version: got %v, want ErrVersionRetired", err)
	}
}
