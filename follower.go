package ltree

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/storage"
)

// Follower is a read replica fed by log shipping: it bootstraps from the
// leader WAL's newest checkpoint, catches up through the durable log
// tail, and then applies every committed batch live — one copy-on-write
// index version per batch, exactly as the leader published them. The
// L-Tree's deterministic relabeling makes the shipped stream sufficient:
// the follower replays logical ops through the same mutation paths the
// leader ran (document.ApplyPayload verifies the recorded labels
// bit-for-bit), so no physical page shipping is needed and the follower
// state at applied sequence number s equals the leader's durable state
// at s — the same recovery-equals-oracle property the crash torture
// suite pins.
//
// The whole snapshot-isolated read surface is served: View, SnapshotView
// and SnapshotAt pin one index version per Txn, with the apply loop
// committing behind them just like a leader-side writer would. A
// follower observes the leader's *durable* prefix: with group commit
// (WALOptions.SyncEvery > 1) a batch becomes visible here at the next
// flush, and a batch the leader's log lost (a failed append later
// repaired by Checkpoint) never arrives — the repairing checkpoint
// marks the log re-based, every attached follower stops with
// storage.ErrShipRebased in Stats().Err rather than follow a stream
// that no longer reconstructs the leader, and a fresh OpenFollower
// re-seeds from the repair checkpoint. A follower likewise stops (with
// storage.ErrSourceClosed) when the leader closes its WAL; already-
// applied state stays readable either way.
//
// A Follower's methods are safe for concurrent use. Close detaches it;
// Promote turns it into the writable store on leader handoff.
type Follower struct {
	st   *Store
	src  storage.TailSource
	tail *storage.Tailer

	done chan struct{} // closed when the apply loop exits

	mu      sync.Mutex
	applied uint64        // last applied batch sequence number
	batches uint64        // batches applied since attach
	bump    chan struct{} // closed+replaced on every state change
	err     error         // terminal ship/apply error
	stopped bool          // Close or Promote ran
}

// FollowerStats is a snapshot of a follower's replication state.
type FollowerStats struct {
	// AppliedSeq is the sequence number of the last batch applied; reads
	// observe exactly the leader's durable state at this point.
	AppliedSeq uint64
	// LeaderSeq is the leader's last appended batch at the time of the
	// call (its durable end, modulo group-commit buffering).
	LeaderSeq uint64
	// Lag is LeaderSeq - AppliedSeq: how many committed batches the
	// follower has yet to apply. 0 means fully caught up.
	Lag uint64
	// Batches counts batches applied since this follower attached.
	Batches uint64
	// Running reports whether the apply loop is still replicating: false
	// after Close/Promote or a terminal error. A detached follower keeps
	// serving reads, but its Lag grows without bound — check Running, not
	// Err, for liveness.
	Running bool
	// Err is the terminal error that stopped replication
	// (storage.ErrShipRebased, storage.ErrSourceClosed, an apply
	// failure); nil while healthy and also nil after a clean
	// Close/Promote — liveness is Running's job.
	Err error
}

// OpenFollower attaches a read replica to a leader's WAL backend: it
// restores the newest checkpoint, then streams the durable log tail —
// catch-up first, live tail on append notification — applying one index
// version per batch. The backend must support tailing (the built-in WAL
// does; NewWALBackend) and hold a checkpoint (a leader's WithWAL writes
// the baseline). Share the leader's open WAL handle in-process; the
// follower only reads and never appends.
//
// The follower registers a segment-retention lease before reading, so
// leader checkpoints cannot truncate log records it still needs; the
// lease advances as batches apply, letting truncation catch up.
func OpenFollower(w WALBackend) (*Follower, error) {
	sh, err := storage.NewShipper(w)
	if err != nil {
		return nil, fmt.Errorf("ltree: open follower: %w", err)
	}
	seq, snap, tail, err := sh.TailLatest()
	if err != nil {
		if errors.Is(err, ErrNoVersion) {
			return nil, fmt.Errorf("ltree: open follower: WAL has no checkpoint (attach it to a leader with WithWAL first): %w", err)
		}
		return nil, fmt.Errorf("ltree: open follower: %w", err)
	}
	doc, err := document.Restore(bytes.NewReader(snap))
	if err != nil {
		tail.Close()
		return nil, fmt.Errorf("ltree: open follower: checkpoint restore: %w", err)
	}
	f := &Follower{
		st:      newStore(doc),
		src:     w.(storage.TailSource), // NewShipper proved the assertion
		tail:    tail,
		done:    make(chan struct{}),
		applied: seq,
		bump:    make(chan struct{}),
	}
	go f.run()
	return f, nil
}

// run is the apply loop: ship one durable batch, apply it, repeat until
// the tailer closes (Close/Promote) or an error stops replication.
func (f *Follower) run() {
	defer close(f.done)
	for {
		seq, payload, err := f.tail.Next()
		if err != nil {
			if !errors.Is(err, storage.ErrTailerClosed) {
				f.fail(fmt.Errorf("ltree: follower ship: %w", err))
			}
			return
		}
		if err := f.applyBatch(seq, payload); err != nil {
			f.fail(fmt.Errorf("ltree: follower apply batch %d: %w", seq, err))
			return
		}
	}
}

// applyBatch applies one shipped batch under the store's write lock and
// publishes the applied sequence number.
func (f *Follower) applyBatch(seq uint64, payload []byte) error {
	f.st.mu.Lock()
	err := f.st.applyShippedLocked(payload)
	f.st.mu.Unlock()
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.applied = seq
	f.batches++
	f.bumpLocked()
	f.mu.Unlock()
	return nil
}

// bumpLocked wakes every WaitFor. Caller holds f.mu.
func (f *Follower) bumpLocked() {
	close(f.bump)
	f.bump = make(chan struct{})
}

// fail records the terminal replication error. The follower keeps
// serving reads at its last applied state; Stats surfaces the error.
func (f *Follower) fail(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err == nil {
		f.err = err
	}
	f.bumpLocked()
}

// Stats reports the follower's replication state: applied/leader
// sequence numbers, lag in batches, and the terminal error if
// replication stopped.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	applied, batches, err, stopped := f.applied, f.batches, f.err, f.stopped
	f.mu.Unlock()
	leader := f.src.Seq()
	lag := uint64(0)
	if leader > applied {
		lag = leader - applied
	}
	return FollowerStats{
		AppliedSeq: applied,
		LeaderSeq:  leader,
		Lag:        lag,
		Batches:    batches,
		Running:    !stopped && err == nil,
		Err:        err,
	}
}

// TxnStats reports the replica store's read-transaction pin accounting
// (open and retired version pins), mirroring Store.TxnStats so node
// dashboards can aggregate leaders and followers uniformly.
func (f *Follower) TxnStats() (open, retired int) { return f.st.TxnStats() }

// WaitFor blocks until the follower has applied every batch up to seq,
// replication stops (the terminal error is returned), or the timeout
// expires (timeout <= 0 waits indefinitely). A successful return means
// reads now observe at least the leader state at seq.
func (f *Follower) WaitFor(seq uint64, timeout time.Duration) error {
	var deadline <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		deadline = tm.C
	}
	for {
		f.mu.Lock()
		applied, err, stopped := f.applied, f.err, f.stopped
		ch := f.bump
		f.mu.Unlock()
		if applied >= seq {
			return nil
		}
		if err != nil {
			return err
		}
		if stopped {
			return ErrFollowerClosed
		}
		select {
		case <-ch:
		case <-deadline:
			return fmt.Errorf("ltree: follower did not reach seq %d (applied %d) within %v: %w", seq, applied, timeout, ErrWaitTimeout)
		}
	}
}

// Close detaches the follower: the retention lease is released and the
// apply loop stops. The already-applied state stays readable (the inner
// store and any open Txns remain valid), but no further batches arrive.
// Idempotent; returns the terminal replication error, if any.
func (f *Follower) Close() error {
	f.mu.Lock()
	f.stopped = true
	f.bumpLocked()
	f.mu.Unlock()
	f.tail.Close()
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Promote hands the follower's store over as a writable Store — the
// leader-handoff step. It drains every batch the leader's log holds (so
// the promoted store starts at the durable end), then detaches and
// returns the inner store. Promote assumes the old leader has stopped
// committing; batches appended after the drain are not applied.
//
// The promoted store has no WAL attached — the shipped log belongs to
// the old leader. Attach a fresh one with WithWAL to make the new
// leader durable. A follower whose replication already failed refuses
// to promote (its state is behind in a way the log cannot repair).
func (f *Follower) Promote() (*Store, error) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return nil, ErrFollowerClosed
	}
	f.stopped = true
	f.bumpLocked()
	f.mu.Unlock()

	// Freeze truncation across the handoff window, then stop the loop.
	guard := f.src.Retain(0)
	defer guard.Release()
	f.tail.Close()
	<-f.done

	f.mu.Lock()
	applied, err := f.applied, f.err
	f.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("ltree: promote: replication had failed: %w", err)
	}
	// Drain the durable tail synchronously: everything the log holds
	// beyond what the loop applied before it stopped.
	if err := f.src.ReplaySince(applied, func(seq uint64, payload []byte) error {
		return f.applyBatch(seq, payload)
	}); err != nil {
		f.fail(err)
		return nil, fmt.Errorf("ltree: promote: drain: %w", err)
	}
	// Post-drain re-base check, mirroring Tailer.fill's post-sweep check:
	// a repair checkpoint racing the handoff re-bases the log, and the
	// leader marks the re-base strictly before any post-repair append —
	// so a count still at the attach-time baseline *after* the drain
	// proves the drained stream reconstructs the old leader. Without
	// this, the promoted store could incorporate a stream that no longer
	// does.
	if f.src.Rebases() != f.tail.RebaseBaseline() {
		err := fmt.Errorf("ltree: promote: log re-based during drain: %w", storage.ErrShipRebased)
		f.fail(err)
		return nil, err
	}
	return f.st, nil
}

// ---------------------------------------------------------------- reads
//
// The follower re-exports the store's read-only surface. Reads are
// snapshot-isolated exactly as on a leader: the apply loop is just
// another writer publishing one index version per batch behind pinned
// Txns. They keep working after Close/Promote, serving the last applied
// state.

// View runs fn inside a read transaction pinned to one index version;
// see Store.View.
func (f *Follower) View(fn func(*Txn) error) error { return f.st.View(fn) }

// SnapshotView opens a read transaction pinned to the current applied
// version; the caller must Close it. See Store.SnapshotView.
func (f *Follower) SnapshotView() *Txn { return f.st.SnapshotView() }

// SnapshotAt opens a read transaction pinned to an explicit version
// number; see Store.SnapshotAt.
func (f *Follower) SnapshotAt(version uint64) (*Txn, error) { return f.st.SnapshotAt(version) }

// Query evaluates a path expression against the current applied state;
// see Store.Query.
func (f *Follower) Query(expr string) ([]*Elem, error) { return f.st.Query(expr) }

// Elements returns the elements with the given tag ("*" = all) in
// document order; see Store.Elements.
func (f *Follower) Elements(tag string) []*Elem { return f.st.Elements(tag) }

// Label returns the node's current (begin, end) label; see Store.Label.
func (f *Follower) Label(n *Elem) (Label, error) { return f.st.Label(n) }

// IsAncestor decides ancestry purely from labels; see Store.IsAncestor.
func (f *Follower) IsAncestor(a, d *Elem) (bool, error) { return f.st.IsAncestor(a, d) }

// Compare orders two nodes by document order using labels only; see
// Store.Compare.
func (f *Follower) Compare(a, b *Elem) (int, error) { return f.st.Compare(a, b) }

// RootHash returns the content hash of the replica's published index
// version; equal to the leader's RootHash at the same applied batch
// (the apply loop verifies exactly that on every stamped batch). See
// Store.RootHash.
func (f *Follower) RootHash() Hash { return f.st.RootHash() }

// DiffVersions computes the entry-level change set between two applied
// index versions; see Store.DiffVersions.
func (f *Follower) DiffVersions(from, to uint64) (*ChangeSet, error) {
	return f.st.DiffVersions(from, to)
}

// Watch subscribes to the replica's change feed: one event per applied
// batch (coalesced under lag), exactly as Store.Watch reports commits.
// The feed survives Close/Promote in the sense that already-published
// versions stay diffable, but no further events arrive once the apply
// loop stops.
func (f *Follower) Watch(opts WatchOptions) (*Watcher, error) { return f.st.Watch(opts) }

// Root returns the replica document's root element.
func (f *Follower) Root() *Elem { return f.st.Root() }

// IndexVersion returns the published index version number; it grows by
// one per applied batch.
func (f *Follower) IndexVersion() uint64 { return f.st.IndexVersion() }

// Snapshot serializes the replica — DOM plus exact label state — in
// snapshot format v2; see Store.Snapshot.
func (f *Follower) Snapshot(w io.Writer) error { return f.st.Snapshot(w) }

// String serializes the replica document to a string.
func (f *Follower) String() string { return f.st.String() }

// Check runs the full invariant suite on the replica; see Store.Check.
func (f *Follower) Check() error { return f.st.Check() }
