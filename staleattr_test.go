package ltree

import (
	"strings"
	"testing"
)

// TestRawSetAttrDoesNotDropMatches is the regression pin for the DESIGN.md
// §3.5 staleness caveat: a raw xmldom.SetAttr below the document layer used
// to leave the published index's per-chunk attribute summaries claiming the
// new attribute absent, so predicate pushdown skipped the chunk and the
// query silently dropped the matching element — a false negative, not a
// false positive. The fix detects the mutation via the document root's
// attribute generation and disables pushdown on stale versions; the
// per-entry predicate check (which reads the live DOM) then finds the
// match. Pre-fix this test fails with an empty result set.
func TestRawSetAttrDoesNotDropMatches(t *testing.T) {
	// Enough attribute-less items to fill several chunks whose summaries
	// all record "no attributes anywhere" — definite absence, the exact
	// shape pushdown prunes on.
	var b strings.Builder
	b.WriteString("<root>")
	for i := 0; i < 600; i++ {
		b.WriteString("<item><name>x</name></item>")
	}
	b.WriteString("</root>")
	st, err := OpenString(b.String(), DefaultParams)
	if err != nil {
		t.Fatal(err)
	}

	items, err := st.Query("//item")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 600 {
		t.Fatalf("got %d items, want 600", len(items))
	}
	target := items[300]

	// Raw DOM edit below the document layer: invisible to the change
	// tracker and the op log, and — before the fix — to the summaries.
	target.SetAttr("k", "v")

	got, err := st.Query("//item[@k='v']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != target {
		t.Fatalf("query after raw SetAttr returned %d matches, want exactly the mutated element", len(got))
	}

	// A fresh build sees the attribute and re-enables pushdown; the
	// result must be identical.
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, err = st.Query("//item[@k='v']")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != target {
		t.Fatalf("query after Refresh returned %d matches, want exactly the mutated element", len(got))
	}
}
