package ltree

import (
	"fmt"
	"iter"

	"github.com/ltree-db/ltree/internal/document"
	"github.com/ltree-db/ltree/internal/index"
	"github.com/ltree-db/ltree/internal/query"
	"github.com/ltree-db/ltree/internal/xmldom"
)

// Txn is a snapshot-isolated read transaction: it captures one published
// index version at open and serves every read — Query, Elements,
// Descendants, Label, IsAncestor, Compare — from that version for its
// whole lifetime. Reads inside one Txn are therefore mutually
// consistent: a writer committing concurrently publishes new versions,
// but this handle never observes them, and the pinned version (including
// every label it materialized) stays fully readable until Close.
//
// A Txn never blocks writers and holds no lock: the pinned version is
// immutable, so its reads are plain memory reads. The one deliberate
// exception is QueryNav, the label-free reference evaluator, which
// navigates the live DOM under the read lock and is documented as not
// snapshot-pinned.
//
// What a pinned version guarantees — and what it does not: labels,
// document order, ancestry and query results all come from the capture
// instant. The *Elem pointers returned are the live DOM nodes, though;
// their tag and attributes are read from the document as it is now, and
// a node deleted after the capture still appears in this Txn's results
// (detached, but structurally frozen in the snapshot's labels). See
// DESIGN.md §3.4.
//
// A Txn is not safe for concurrent use by multiple goroutines; open one
// per goroutine (opening is cheap — a counter increment, no copying).
//
// A Txn opened from a Forest is a composite: one pinned part per shard,
// with Query/Stream/Elements/Count fanning out and merging in global
// begin order, and the label reads (Label, IsAncestor, Compare)
// resolving in the owning shard's coordinate space. Shards/ShardTxn
// expose the parts. ForestTxn is an alias of Txn kept for readability
// at forest call sites.
type Txn struct {
	s       *Store
	ver     *index.Version
	release func()

	// parts/roots make this Txn a forest composite: one pinned
	// single-store Txn per shard, plus each shard's synthetic root so
	// merged streams can filter it. nil for plain store transactions
	// (s/ver are then set instead, and vice versa).
	parts []*Txn
	roots []*Elem

	// byTag lazily memoizes node→posting lookups against the pinned
	// version, per tag, for the label reads (Label, IsAncestor, Compare,
	// Descendants): the first lookup of a tag drains its cursor once, and
	// every later lookup is a hash probe.
	byTag map[string]map[*Elem]document.Entry

	// predMemo mirrors byTag for attribute predicates: node→verdict
	// caches shared per step signature across every Query this Txn
	// evaluates, so repeated predicate-bearing queries resolve each
	// node's attributes once (a hash probe afterwards). Allocated on the
	// first predicate-bearing query.
	predMemo *query.PredMemo
}

// View runs fn inside a read transaction: every read through the Txn
// observes the one index version current when View began, regardless of
// concurrent commits. The transaction is released when fn returns; fn's
// error is returned as-is. This is the Store's analogue of a database
// View/ReadTx block, and the primitive the single-shot Query/Elements
// wrappers are built on.
func (s *Store) View(fn func(*Txn) error) error {
	tx := s.SnapshotView()
	defer tx.Close()
	return fn(tx)
}

// SnapshotView opens a read transaction pinned to the current index
// version and returns the handle. The caller owns its lifetime and must
// Close it; prefer View unless the transaction has to cross function or
// goroutine boundaries.
func (s *Store) SnapshotView() *Txn {
	ver, release := s.vers.Pin()
	return &Txn{s: s, ver: ver, release: release}
}

// SnapshotAt opens a read transaction pinned to an explicit version
// number: the current version, or a retired one that some open
// transaction still pins (pinning is what keeps a retired version
// attachable — see DESIGN.md §3.4). ErrVersionRetired otherwise.
func (s *Store) SnapshotAt(version uint64) (*Txn, error) {
	ver, release, ok := s.vers.PinAt(version)
	if !ok {
		return nil, ErrVersionRetired
	}
	return &Txn{s: s, ver: ver, release: release}, nil
}

// TxnStats reports the open read-transaction pin count and how many
// retired index versions those pins are keeping attachable — the
// engine's retire accounting, useful for spotting leaked handles.
func (s *Store) TxnStats() (open, retired int) { return s.vers.Stats() }

// Close releases the transaction's pin on its index version. Idempotent.
// After Close, error-returning reads (Query, QueryNav, Descendants,
// Label, IsAncestor, Compare) report ErrTxnClosed; the errorless ones
// degrade to their empty values (Elements nil, Stream exhausted, Count
// and Version 0). Results cursors obtained before Close keep working
// (the version is immutable and reachable through them), but the
// version's registry entry may be retired.
func (t *Txn) Close() error {
	for _, p := range t.parts {
		p.Close()
	}
	if t.release != nil {
		t.release()
		t.release = nil
		t.ver = nil
	}
	return nil
}

// Version returns the pinned index version number: every read through
// this Txn observes exactly this version. A forest composite reports
// the sum of its parts' versions (the forest's composite version; see
// Forest.IndexVersion).
func (t *Txn) Version() uint64 {
	if t.parts != nil {
		var sum uint64
		for _, p := range t.parts {
			sum += p.Version()
		}
		return sum
	}
	if t.ver == nil {
		return 0
	}
	return t.ver.N
}

// Shards returns the composite's shard count: 0 for a plain store Txn.
func (t *Txn) Shards() int { return len(t.parts) }

// ShardTxn exposes shard i's pinned part — for per-shard reads (labels,
// ancestry) in that shard's own coordinate space. Panics on a plain
// store Txn (Shards() == 0).
func (t *Txn) ShardTxn(i int) *Txn { return t.parts[i] }

// ix returns the pinned index or fails if the transaction is closed.
func (t *Txn) ix() (*index.Index, error) {
	if t.ver == nil {
		return nil, ErrTxnClosed
	}
	return t.ver.Ix, nil
}

// Query evaluates a path expression against the pinned version and
// returns a streaming Results cursor: matches surface one at a time, in
// document order, with intermediate memory bounded by the path depth
// times the document depth — nothing is materialized unless the caller
// Collects. The rooted anchor, every join input and every label come
// from the snapshot, so two Queries in one Txn compose consistently.
func (t *Txn) Query(expr string) (*Results, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	if t.parts != nil {
		p = forestPath(p)
		rs := make([]*Results, len(t.parts))
		for i, part := range t.parts {
			if _, err := part.ix(); err != nil {
				return nil, err
			}
			rs[i] = withoutShardRoot(part.resultsFor(p), t.roots[i])
		}
		return MergeResults(rs...), nil
	}
	if _, err := t.ix(); err != nil {
		return nil, err
	}
	return t.resultsFor(p), nil
}

// resultsFor builds the lazy pipeline for an already-parsed path: the
// zig-zag join with chunk-level predicate pushdown, sharing this Txn's
// predicate verdict memo across queries.
func (t *Txn) resultsFor(p *query.Path) *Results {
	opts := query.EvalOptions{}
	if pathHasPreds(p) {
		if t.predMemo == nil {
			t.predMemo = query.NewPredMemo()
		}
		opts.Memo = t.predMemo
	}
	return &Results{cur: query.JoinCursorWith(t.ver.Ix, p, opts)}
}

// pathHasPreds reports whether any step carries attribute predicates.
func pathHasPreds(p *query.Path) bool {
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return true
		}
	}
	return false
}

// QueryNav evaluates a path by plain DOM navigation — the label-free
// reference evaluator. It reads the live document under the store's read
// lock, NOT the pinned snapshot: results reflect writes committed after
// this Txn opened. It exists for cross-checking and benchmarks; use
// Query for snapshot-consistent reads.
func (t *Txn) QueryNav(expr string) ([]*Elem, error) {
	p, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	if t.parts != nil {
		return nil, fmt.Errorf("ltree: QueryNav is a single-store reference evaluator; navigate one shard's Txn (ShardTxn) instead")
	}
	if t.ver == nil {
		return nil, ErrTxnClosed
	}
	return t.navFor(p), nil
}

// navFor runs the navigation evaluator under the read lock.
func (t *Txn) navFor(p *query.Path) []*Elem {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	return query.Nav(t.s.doc, p)
}

// Elements materializes the pinned version's elements with the given tag
// ("*" = all; composites exclude shard roots) in document order. Stream
// is the lazy equivalent.
func (t *Txn) Elements(tag string) []*Elem {
	if t.parts != nil {
		return t.Stream(tag).Collect()
	}
	ix, err := t.ix()
	if err != nil {
		return nil
	}
	out := make([]*Elem, 0, ix.Count(tag))
	cur := ix.Cursor(tag)
	for e, ok := cur.Next(); ok; e, ok = cur.Next() {
		out = append(out, e.Node)
	}
	return out
}

// Stream returns the pinned version's posting stream for a tag ("*" =
// every element) as a Results cursor — document order, nothing copied.
// A composite merges its parts' streams in global begin order with the
// shard roots filtered.
func (t *Txn) Stream(tag string) *Results {
	if t.parts != nil {
		rs := make([]*Results, len(t.parts))
		for i, part := range t.parts {
			rs[i] = withoutShardRoot(part.Stream(tag), t.roots[i])
		}
		return MergeResults(rs...)
	}
	ix, err := t.ix()
	if err != nil {
		return &Results{cur: document.NewSliceCursor(nil)}
	}
	return &Results{cur: ix.Cursor(tag)}
}

// Count returns the pinned version's posting count for a tag ("*" =
// every element; composites exclude shard roots) without materializing
// anything.
func (t *Txn) Count(tag string) int {
	if t.parts != nil {
		total := 0
		for _, part := range t.parts {
			total += part.Count(tag)
			if (tag == "*" || tag == shardRootTag) && part.ver != nil {
				total-- // the synthetic shard root is not a forest element
			}
		}
		return total
	}
	ix, err := t.ix()
	if err != nil {
		return 0
	}
	return ix.Count(tag)
}

// Descendants streams every element strictly inside n — in the pinned
// version's coordinates — as one index range scan. Like every Txn read
// it is consistent with the Txn's other reads: the anchor label and the
// scanned postings come from the same version.
func (t *Txn) Descendants(n *Elem) (*Results, error) {
	if t.parts != nil {
		i, _, err := t.partEntry(n)
		if err != nil {
			return nil, err
		}
		return t.parts[i].Descendants(n)
	}
	e, err := t.entry(n)
	if err != nil {
		return nil, err
	}
	return &Results{cur: query.DescendantsCursor(t.ver.Ix, e)}, nil
}

// Label returns n's (begin, end) interval as of the pinned version.
// Within a Txn, labels resolve from the snapshot: an element inserted
// after the capture — or absent from it for any reason, including text
// nodes, which the tag index does not cover — reports ErrUnbound, and an
// element relabeled after the capture keeps its capture-time label. Use
// Store.Label for the live value (text nodes included).
func (t *Txn) Label(n *Elem) (Label, error) {
	if t.parts != nil {
		_, e, err := t.partEntry(n)
		if err != nil {
			return Label{}, err
		}
		return e.Label, nil
	}
	e, err := t.entry(n)
	if err != nil {
		return Label{}, err
	}
	return e.Label, nil
}

// Level returns n's depth as recorded by the pinned version's index.
// Like Label, it resolves from the snapshot: a node moved to a
// different depth after the capture keeps its capture-time level. A
// change-feed consumer rebuilding a content multiset needs this —
// entries hash as (tag, label, level), and Elem.Level reports only the
// live depth.
func (t *Txn) Level(n *Elem) (int, error) {
	if t.parts != nil {
		_, e, err := t.partEntry(n)
		if err != nil {
			return 0, err
		}
		return e.Level, nil
	}
	e, err := t.entry(n)
	if err != nil {
		return 0, err
	}
	return e.Level, nil
}

// IsAncestor decides ancestry purely from the pinned version's labels
// (the paper's containment test). On a composite, elements living in
// different shards are never related — no forest document spans shards.
func (t *Txn) IsAncestor(a, d *Elem) (bool, error) {
	if t.parts != nil {
		ia, ea, err := t.partEntry(a)
		if err != nil {
			return false, err
		}
		id, ed, err := t.partEntry(d)
		if err != nil {
			return false, err
		}
		return ia == id && ea.Label.Contains(ed.Label), nil
	}
	ea, err := t.entry(a)
	if err != nil {
		return false, err
	}
	ed, err := t.entry(d)
	if err != nil {
		return false, err
	}
	return ea.Label.Contains(ed.Label), nil
}

// Compare orders two elements by document order using the pinned
// version's labels only: -1, 0 or 1. A composite orders by (begin,
// shard) — exactly the deterministic global order its merged streams
// deliver.
func (t *Txn) Compare(a, b *Elem) (int, error) {
	var ea, eb document.Entry
	var ia, ib int
	var err error
	if t.parts != nil {
		if ia, ea, err = t.partEntry(a); err != nil {
			return 0, err
		}
		if ib, eb, err = t.partEntry(b); err != nil {
			return 0, err
		}
	} else {
		if ea, err = t.entry(a); err != nil {
			return 0, err
		}
		if eb, err = t.entry(b); err != nil {
			return 0, err
		}
	}
	switch {
	case ea.Label.Begin < eb.Label.Begin:
		return -1, nil
	case ea.Label.Begin > eb.Label.Begin:
		return 1, nil
	case ia < ib:
		return -1, nil
	case ia > ib:
		return 1, nil
	default:
		return 0, nil
	}
}

// partEntry resolves an element's posting across a composite's parts,
// returning the owning shard index. Exactly one shard can hold the
// element (documents never span shards), so the first hit wins.
func (t *Txn) partEntry(n *Elem) (int, document.Entry, error) {
	for i, p := range t.parts {
		e, err := p.entry(n)
		if err == nil {
			return i, e, nil
		}
		if err != ErrUnbound {
			return 0, document.Entry{}, err
		}
	}
	return 0, document.Entry{}, ErrUnbound
}

// entry resolves an element's posting in the pinned version, memoizing
// one tag's postings per lookup tag (the first lookup drains the tag's
// cursor; later ones are hash probes).
func (t *Txn) entry(n *Elem) (document.Entry, error) {
	ix, err := t.ix()
	if err != nil {
		return document.Entry{}, err
	}
	if n == nil || n.Kind() != xmldom.Element {
		return document.Entry{}, ErrUnbound
	}
	tag := n.Tag()
	m := t.byTag[tag]
	if m == nil {
		m = make(map[*Elem]document.Entry, ix.Count(tag))
		cur := ix.Cursor(tag)
		for e, ok := cur.Next(); ok; e, ok = cur.Next() {
			m[e.Node] = e
		}
		if t.byTag == nil {
			t.byTag = make(map[string]map[*Elem]document.Entry)
		}
		t.byTag[tag] = m
	}
	e, ok := m[n]
	if !ok {
		return document.Entry{}, ErrUnbound
	}
	return e, nil
}

// Results streams query matches in document order. It is single-use and
// forward-only, not safe for concurrent use; obtain one per traversal.
// Pulling from a Results does no locking and touches only the immutable
// index version it was built from.
type Results struct {
	cur document.Cursor
}

// Next yields the next match, or ok=false once exhausted.
func (r *Results) Next() (*Elem, bool) {
	e, ok := r.cur.Next()
	return e.Node, ok
}

// NextLabeled is Next plus the match's snapshot label — handy for
// range-bounded consumption together with Seek.
func (r *Results) NextLabeled() (*Elem, Label, bool) {
	e, ok := r.cur.Next()
	return e.Node, e.Label, ok
}

// Seek advances to the first match whose label begin is >= begin and
// yields it. Seeking never retreats: a begin at or behind the current
// position degrades to Next. On the chunked index a Seek skips whole
// chunks by fence comparison, so jumping over a cold region costs
// O(chunks skipped), not O(postings skipped).
func (r *Results) Seek(begin uint64) (*Elem, bool) {
	e, ok := r.cur.Seek(begin)
	return e.Node, ok
}

// MergeResults merges begin-sorted Results streams into one Results in
// global (begin, argument-order) order — the k-way merge the forest's
// scatter-gather queries are built on, exported because any begin-sorted
// streams compose the same way (e.g. two tag streams of one Txn, or one
// stream per shard Txn). Nil streams are skipped. Consumption stays
// lazy: one buffered entry per input, and Seek pushes the target down
// into every input (fence-directory jumps on chunked indexes). The
// inputs must come from the same label space for the merged order to be
// meaningful; merging across stores (as the forest does) still yields
// each input's entries in order, interleaved deterministically.
//
// The merged stream keeps the forward-only Results contract: Seek never
// retreats, because every input is itself forward-only — a begin at or
// behind the current position degrades to Next on every input.
func MergeResults(rs ...*Results) *Results {
	curs := make([]document.Cursor, 0, len(rs))
	for _, r := range rs {
		if r != nil {
			curs = append(curs, r.cur)
		}
	}
	return &Results{cur: query.Merge(curs...)}
}

// Collect drains the remaining matches into a slice — the materializing
// adapter the compatibility wrappers use.
func (r *Results) Collect() []*Elem {
	var out []*Elem
	for e, ok := r.cur.Next(); ok; e, ok = r.cur.Next() {
		out = append(out, e.Node)
	}
	return out
}

// All adapts the remaining matches to a range-over-func iterator:
//
//	for el := range res.All() { ... }
//
// Breaking out of the loop simply stops pulling; nothing is leaked.
func (r *Results) All() iter.Seq[*Elem] {
	return func(yield func(*Elem) bool) {
		for e, ok := r.cur.Next(); ok; e, ok = r.cur.Next() {
			if !yield(e.Node) {
				return
			}
		}
	}
}

// Labeled is All with each match's snapshot label as the second value.
func (r *Results) Labeled() iter.Seq2[*Elem, Label] {
	return func(yield func(*Elem, Label) bool) {
		for e, ok := r.cur.Next(); ok; e, ok = r.cur.Next() {
			if !yield(e.Node, e.Label) {
				return
			}
		}
	}
}
