// Package ltree is a dynamic, order-preserving labeling library for
// ordered XML data — a full reproduction of Chen, Mihaila, Bordawekar and
// Padmanabhan, "L-Tree: a Dynamic Labeling Structure for Ordered XML
// Data" (EDBT 2004 Workshops, LNCS 3268).
//
// An L-Tree assigns every XML tag an integer label such that document
// order is label order and element nesting is interval containment, so
// ancestor/descendant queries ("book//title") become label comparisons —
// one self-join in a relational embedding. Unlike static begin/end
// numbering, the L-Tree keeps labels valid under insertions with O(log n)
// amortized relabelings and O(log n)-bit labels, tunable through the
// parameters (f, s).
//
// # Quickstart
//
//	st, err := ltree.OpenString(`<book><title>L-Trees</title></book>`, ltree.DefaultParams)
//	if err != nil { ... }
//	titles, _ := st.Query("book//title")
//	ch, _ := st.InsertElement(st.Root(), 1, "chapter")   // labels stay valid
//	lab, _ := st.Label(ch)                               // (begin, end) interval
//
// Reads scale through snapshot-isolated transactions: View pins one
// index version for a whole block of reads, and queries stream their
// matches through cursors instead of materializing result sets:
//
//	_ = st.View(func(tx *ltree.Txn) error {
//	    res, _ := tx.Query("//chapter//title")
//	    for el := range res.All() { ... }   // lazy; break any time
//	    return nil
//	})
//
// # Layers
//
//   - Store: the concurrency-first engine — parallel readers over an
//     immutable copy-on-write tag index, write batches that patch the
//     index incrementally, versioned snapshots (this file's API; start
//     here, and see DESIGN.md for the engine layering).
//   - Txn / Results: snapshot-isolated read transactions pinning one
//     index version, with lazy streaming query results (DESIGN.md §3.4)
//     evaluated by a zig-zag structural join with chunk-level predicate
//     pushdown and a Txn-scoped predicate memo (DESIGN.md §3.5).
//   - Reader: the unified read surface — one interface over Store,
//     Follower, and Forest, so generic consumers (the ltreed handlers,
//     tools, tests) are written once against any node role.
//   - Hash / ChangeSet / Watcher: Merkle-hashed index versions — every
//     published version carries a partition-independent content hash;
//     DiffVersions computes entry-level diffs in O(changed chunks),
//     Watch subscribes to a gap-free change feed with version cursors
//     and path scoping, and replicas compare stamped root hashes to
//     detect divergence at O(1) per applied batch (DESIGN.md §10;
//     ltreed serves GET /v1/changes).
//   - Forest: document-partitioned Stores behind one router — writes
//     route to a document's shard and commit in parallel across shards,
//     queries scatter-gather through a k-way merge in global
//     (begin, shard) order, recovery replays every shard WAL
//     concurrently (DESIGN.md §8; cmd/ltreed serves one with -forest).
//   - Follower: a log-shipping read replica fed off a leader's WAL —
//     catch-up plus live tail, the full Txn read surface at a measurable
//     lag, promote-to-writable on leader handoff (DESIGN.md §7). The
//     feed attaches in-process or over the wire: storage.ShipServer
//     serves a leader's WAL on any net.Conn and storage.RemoteTailSource
//     satisfies the same contract across it (DESIGN.md §7.5), with
//     cmd/ltreed packaging leader + follower fleet as an HTTP daemon.
//   - BlobTier: an asynchronous object-store tier under the WAL —
//     AttachBlobTier mirrors sealed segments and checkpoints into any
//     BlobStore off the commit path, ReleaseLocal bounds local disk to
//     the active tail while reads fetch released history back, LoadAt
//     reconstructs any blob-durable seq bit-identically, and
//     OpenFollowerSeeded bootstraps a replica from the object store
//     instead of the leader (DESIGN.md §9; ltreed -blob serves it).
//   - Tree / Node: the raw materialized L-Tree over abstract list slots
//     (paper §2), for embedding in other systems.
//   - Virtual: the B-tree-backed virtual L-Tree (paper §4.2) that stores
//     only the labels.
//   - Document / Elem / Label: the XML binding used by Store.
//
// The experiment harness reproducing the paper's figures and analytic
// tables lives in cmd/ltreebench; see EXPERIMENTS.md for results.
package ltree
