package ltree

import (
	"path/filepath"
	"testing"
)

// countLogRecords replays the live tail of a WAL and counts its records.
func countLogRecords(t *testing.T, w WALBackend) int {
	t.Helper()
	v, _, err := w.Latest()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := w.ReplaySince(v, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAutoCheckpointByRecords: with a record-count policy, the store
// checkpoints on its own once the live log holds that many batches, and
// the log actually truncates — the replay tail shrinks back to zero.
func TestAutoCheckpointByRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALBackend(filepath.Join(dir, "wal"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w, AutoCheckpoint(0, 4)); err != nil {
		t.Fatal(err)
	}
	baseline, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if _, err := st.InsertElement(st.Root(), 0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := w.Versions(); err != nil || len(got) != len(baseline) {
		t.Fatalf("checkpointed before the threshold: %d versions (was %d), err %v", len(got), len(baseline), err)
	}
	if n := countLogRecords(t, w); n != 3 {
		t.Fatalf("live log holds %d records, want 3", n)
	}

	// The 4th commit crosses the threshold: a checkpoint must appear and
	// the live log must truncate.
	if _, err := st.InsertElement(st.Root(), 0, "x"); err != nil {
		t.Fatal(err)
	}
	got, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(baseline)+1 {
		t.Fatalf("auto-checkpoint did not fire: %d versions, want %d", len(got), len(baseline)+1)
	}
	if n := countLogRecords(t, w); n != 0 {
		t.Fatalf("log did not truncate: %d records remain", n)
	}

	// Recovery from the auto-checkpointed WAL reproduces the live store.
	rec, err := LoadLatest(w)
	if err != nil {
		t.Fatal(err)
	}
	if rec.String() != st.String() || rec.Check() != nil {
		t.Fatal("recovered store diverges from the live one")
	}
}

// TestAutoCheckpointByBytes: the byte-threshold arm fires independently.
func TestAutoCheckpointByBytes(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALBackend(filepath.Join(dir, "wal"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w, AutoCheckpoint(1, 0)); err != nil { // any append trips it
		t.Fatal(err)
	}
	baseline, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InsertElement(st.Root(), 0, "x"); err != nil {
		t.Fatal(err)
	}
	got, err := w.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(baseline)+1 {
		t.Fatal("byte-threshold auto-checkpoint did not fire")
	}
	if n := countLogRecords(t, w); n != 0 {
		t.Fatalf("log did not truncate: %d records remain", n)
	}
}

// TestAutoCheckpointOffByDefault: without the option the log only grows.
func TestAutoCheckpointOffByDefault(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWALBackend(filepath.Join(dir, "wal"), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	st, err := OpenString(`<r><a/></r>`, DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WithWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := st.InsertElement(st.Root(), 0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if n := countLogRecords(t, w); n != 10 {
		t.Fatalf("live log holds %d records, want 10 (no auto-checkpoint by default)", n)
	}
}
